// Unit tests: the no-overwrite heap access method.

#include <gtest/gtest.h>

#include "src/catalog/database.h"

namespace invfs {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db_->catalog().CreateTable(
        *txn, "t", Schema{{"k", TypeId::kInt4}, {"v", TypeId::kText}},
        kDeviceMagneticDisk);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  Result<TxnId> Begin() { return db_->Begin(); }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  TableInfo* table_ = nullptr;
};

TEST_F(HeapTest, InsertAssignsMonotonicTids) {
  auto txn = Begin();
  Tid prev{0, 0};
  for (int i = 0; i < 10; ++i) {
    auto tid = table_->heap->Insert(*txn, {Value::Int4(i), Value::Text("x")});
    ASSERT_TRUE(tid.ok());
    if (i > 0) {
      EXPECT_GT(*tid, prev);
    }
    prev = *tid;
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(HeapTest, DeleteMarksNotRemoves) {
  auto t1 = Begin();
  auto tid = table_->heap->Insert(*t1, {Value::Int4(1), Value::Text("doomed")});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());

  auto t2 = Begin();
  ASSERT_TRUE(table_->heap->Delete(*t2, *tid).ok());
  ASSERT_TRUE(db_->Commit(*t2).ok());

  // Invisible to current snapshots...
  auto t3 = Begin();
  auto row = table_->heap->Fetch(db_->SnapshotFor(*t3), *tid);
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(row->has_value());
  ASSERT_TRUE(db_->Commit(*t3).ok());
  // ...but physically still there with its original contents (no-overwrite).
  auto any = table_->heap->FetchAny(*tid);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any->second[1].AsText(), "doomed");
  EXPECT_NE(any->first.xmax, kInvalidTxn);
}

TEST_F(HeapTest, ReplaceKeepsOldVersionForHistory) {
  auto t1 = Begin();
  auto tid = table_->heap->Insert(*t1, {Value::Int4(1), Value::Text("v1")});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());
  const Timestamp before = db_->Now();

  auto t2 = Begin();
  auto new_tid = table_->heap->Replace(*t2, *tid, {Value::Int4(1), Value::Text("v2")});
  ASSERT_TRUE(new_tid.ok());
  EXPECT_NE(*new_tid, *tid);
  ASSERT_TRUE(db_->Commit(*t2).ok());

  auto old_row = table_->heap->Fetch(db_->SnapshotAt(before), *tid);
  ASSERT_TRUE(old_row.ok());
  ASSERT_TRUE(old_row->has_value());
  EXPECT_EQ((**old_row)[1].AsText(), "v1");
}

TEST_F(HeapTest, WriteWriteConflictDetected) {
  auto t1 = Begin();
  auto tid = table_->heap->Insert(*t1, {Value::Int4(1), Value::Text("x")});
  ASSERT_TRUE(db_->Commit(*t1).ok());

  auto t2 = Begin();
  auto t3 = Begin();
  ASSERT_TRUE(table_->heap->Delete(*t2, *tid).ok());
  // Without acquiring locks (the lock manager would normally prevent this),
  // a second deleter of the same version must be refused.
  Status s = table_->heap->Delete(*t3, *tid);
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(db_->Abort(*t2).ok());
  // After the first deleter aborts, the second may claim it.
  EXPECT_TRUE(table_->heap->Delete(*t3, *tid).ok());
  ASSERT_TRUE(db_->Commit(*t3).ok());
}

TEST_F(HeapTest, ScanSkipsInvisibleVersions) {
  auto t1 = Begin();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table_->heap->Insert(*t1, {Value::Int4(i), Value::Text("a")}).ok());
  }
  ASSERT_TRUE(db_->Commit(*t1).ok());
  // Delete the even rows.
  auto t2 = Begin();
  auto it = table_->heap->Scan(db_->SnapshotFor(*t2));
  std::vector<Tid> evens;
  while (it.Next()) {
    if (it.row()[0].AsInt4() % 2 == 0) {
      evens.push_back(it.tid());
    }
  }
  for (Tid tid : evens) {
    ASSERT_TRUE(table_->heap->Delete(*t2, tid).ok());
  }
  ASSERT_TRUE(db_->Commit(*t2).ok());

  auto t3 = Begin();
  int visible = 0, all = 0;
  auto vis = table_->heap->Scan(db_->SnapshotFor(*t3));
  while (vis.Next()) {
    ++visible;
    EXPECT_EQ(vis.row()[0].AsInt4() % 2, 1);
  }
  auto raw = table_->heap->ScanAll();
  while (raw.Next()) {
    ++all;
  }
  EXPECT_EQ(visible, 10);
  EXPECT_EQ(all, 20) << "no-overwrite: all versions physically present";
  ASSERT_TRUE(db_->Commit(*t3).ok());
}

TEST_F(HeapTest, MultiPageHeapScansCompletely) {
  auto txn = Begin();
  const std::string big(2000, 'q');
  for (int i = 0; i < 50; ++i) {  // ~4 tuples/page -> ~13 pages
    ASSERT_TRUE(table_->heap->Insert(*txn, {Value::Int4(i), Value::Text(big)}).ok());
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_GT(*table_->heap->NumBlocks(), 5u);
  auto reader = Begin();
  int count = 0;
  auto it = table_->heap->Scan(db_->SnapshotFor(*reader));
  while (it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 50);
  ASSERT_TRUE(db_->Commit(*reader).ok());
}

TEST_F(HeapTest, OversizedTupleRejected) {
  auto txn = Begin();
  const std::string too_big(kPageSize, 'x');
  auto tid = table_->heap->Insert(*txn, {Value::Int4(1), Value::Text(too_big)});
  EXPECT_FALSE(tid.ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
}

TEST_F(HeapTest, ExpungeAndCompactReclaimPhysically) {
  auto t1 = Begin();
  auto tid = table_->heap->Insert(*t1, {Value::Int4(1), Value::Text("bye")});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());
  ASSERT_TRUE(table_->heap->Expunge(*tid).ok());
  ASSERT_TRUE(table_->heap->CompactAllPages().ok());
  EXPECT_TRUE(table_->heap->FetchAny(*tid).status().IsNotFound());
  auto raw = table_->heap->ScanAll();
  EXPECT_FALSE(raw.Next());
}

TEST_F(HeapTest, FetchColumnAvoidsFullDecode) {
  auto txn = Begin();
  auto tid = table_->heap->Insert(*txn, {Value::Int4(77), Value::Text("payload")});
  ASSERT_TRUE(tid.ok());
  auto v = table_->heap->FetchColumn(db_->SnapshotFor(*txn), *tid, 0);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ((*v)->AsInt4(), 77);
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

}  // namespace
}  // namespace invfs
