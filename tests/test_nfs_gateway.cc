// Tests for the NFS gateway to Inversion: stateless per-op atomicity, and
// 3DFS-style @timestamp namespace extension for time travel.

#include <gtest/gtest.h>

#include <cstring>

#include "src/net/nfs_gateway.h"

namespace invfs {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    gw_ = std::make_unique<InvNfsGateway>(fs_.get());
  }

  void WriteAll(int fd, const std::string& data) {
    auto n = gw_->Write(fd, std::as_bytes(std::span(data.data(), data.size())));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, static_cast<int64_t>(data.size()));
  }

  std::string ReadAll(const std::string& path) {
    auto fd = gw_->Open(path, false);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return {};
    }
    std::string out;
    char buf[256];
    for (;;) {
      auto n = gw_->Read(*fd, std::as_writable_bytes(std::span(buf)));
      EXPECT_TRUE(n.ok());
      if (!n.ok() || *n == 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(*n));
    }
    EXPECT_TRUE(gw_->Close(*fd).ok());
    return out;
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvNfsGateway> gw_;
};

TEST(ParseTimePath, Syntax) {
  auto plain = InvNfsGateway::ParseTimePath("/a/b");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->first, "/a/b");
  EXPECT_EQ(plain->second, kTimestampNow);

  auto stamped = InvNfsGateway::ParseTimePath("/a/b@12345");
  ASSERT_TRUE(stamped.ok());
  EXPECT_EQ(stamped->first, "/a/b");
  EXPECT_EQ(stamped->second, 12345u);

  EXPECT_FALSE(InvNfsGateway::ParseTimePath("/a/b@").ok());
  EXPECT_FALSE(InvNfsGateway::ParseTimePath("/a/b@12x").ok());
  EXPECT_FALSE(InvNfsGateway::ParseTimePath("/a@5/b").ok())
      << "suffix must be on the final component";
}

TEST_F(GatewayTest, StatelessRoundtrip) {
  auto fd = gw_->Creat("/gw.txt");
  ASSERT_TRUE(fd.ok());
  WriteAll(*fd, "through the gateway");
  ASSERT_TRUE(gw_->Close(*fd).ok());
  EXPECT_EQ(ReadAll("/gw.txt"), "through the gateway");
  auto st = gw_->GetAttr("/gw.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 19);
}

TEST_F(GatewayTest, EveryWriteIsIndividuallyDurable) {
  auto fd = gw_->Creat("/durable.txt");
  ASSERT_TRUE(fd.ok());
  WriteAll(*fd, "sync!");
  // Crash without closing: the write must already be committed.
  gw_.reset();
  fs_.reset();
  db_->Crash();
  db_.reset();
  auto db = Database::Open(&env_);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  fs_ = std::make_unique<InversionFs>(db_.get());
  ASSERT_TRUE(fs_->Mount().ok());
  gw_ = std::make_unique<InvNfsGateway>(fs_.get());
  EXPECT_EQ(ReadAll("/durable.txt"), "sync!");
}

TEST_F(GatewayTest, TimestampNamespaceReadsThePast) {
  auto fd = gw_->Creat("/log.txt");
  ASSERT_TRUE(fd.ok());
  WriteAll(*fd, "first");
  ASSERT_TRUE(gw_->Close(*fd).ok());
  const Timestamp t1 = db_->Now();
  fd = gw_->Open("/log.txt", true);
  ASSERT_TRUE(fd.ok());
  WriteAll(*fd, "SECOND-LONGER");
  ASSERT_TRUE(gw_->Close(*fd).ok());

  EXPECT_EQ(ReadAll("/log.txt"), "SECOND-LONGER");
  // ls(1) and cat(1) against the past, exactly as 3DFS pitched it.
  EXPECT_EQ(ReadAll("/log.txt@" + std::to_string(t1)), "first");
  auto st = gw_->GetAttr("/log.txt@" + std::to_string(t1));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5);
}

TEST_F(GatewayTest, HistoricalReaddirAndUndelete) {
  ASSERT_TRUE(gw_->Mkdir("/dir").ok());
  auto fd = gw_->Creat("/dir/gone.txt");
  ASSERT_TRUE(fd.ok());
  WriteAll(*fd, "bring me back");
  ASSERT_TRUE(gw_->Close(*fd).ok());
  const Timestamp before_rm = db_->Now();
  ASSERT_TRUE(gw_->Remove("/dir/gone.txt").ok());
  EXPECT_TRUE(gw_->Readdir("/dir")->empty());
  auto then = gw_->Readdir("/dir@" + std::to_string(before_rm));
  ASSERT_TRUE(then.ok());
  ASSERT_EQ(then->size(), 1u);
  EXPECT_EQ((*then)[0].name, "gone.txt");
  // Undelete through the gateway: read the past, write the present.
  const std::string saved = ReadAll("/dir/gone.txt@" + std::to_string(before_rm));
  EXPECT_EQ(saved, "bring me back");
}

TEST_F(GatewayTest, ThePastIsReadOnly) {
  auto fd = gw_->Creat("/ro.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(gw_->Close(*fd).ok());
  const std::string at = "@" + std::to_string(db_->Now());
  EXPECT_EQ(gw_->Open("/ro.txt" + at, true).status().code(), ErrorCode::kReadOnly);
  EXPECT_EQ(gw_->Creat("/new.txt" + at).status().code(), ErrorCode::kReadOnly);
  EXPECT_EQ(gw_->Remove("/ro.txt" + at).code(), ErrorCode::kReadOnly);
  EXPECT_EQ(gw_->Mkdir("/d" + at).code(), ErrorCode::kReadOnly);
  EXPECT_EQ(gw_->Rename("/ro.txt" + at, "/x.txt").code(), ErrorCode::kReadOnly);
}

TEST_F(GatewayTest, SharesTheFileSystemWithTransactionalClients) {
  // "Users who want the richer services may still link with the special
  // library" — both clients see one file system.
  auto session_or = fs_->NewSession();
  ASSERT_TRUE(session_or.ok());
  InvSession& txn_client = **session_or;
  ASSERT_TRUE(txn_client.p_begin().ok());
  auto fd = txn_client.p_creat("/shared.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "transactional";
  ASSERT_TRUE(
      txn_client.p_write(*fd, std::as_bytes(std::span(data.data(), data.size())))
          .ok());
  ASSERT_TRUE(txn_client.p_close(*fd).ok());
  // Uncommitted: the NFS client can't see it yet.
  EXPECT_TRUE(gw_->GetAttr("/shared.txt").status().IsNotFound());
  ASSERT_TRUE(txn_client.p_commit().ok());
  EXPECT_EQ(ReadAll("/shared.txt"), "transactional");
}

}  // namespace
}  // namespace invfs
