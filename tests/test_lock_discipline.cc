// Lock manager edge cases and the debug-invariants instrumentation: upgrade
// deadlocks, re-entrancy, release-while-waiting, strict-2PL and latch-order
// violation detection, and a TSan-targeted stress run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/txn/lock_manager.h"

namespace invfs {
namespace {

constexpr Oid kRelA = 100;
constexpr Oid kRelB = 101;

TEST(LockManager, TwoUpgradersDeadlockAndVictimRecovers) {
  // Both transactions hold S; both want X. Neither upgrade can drain the
  // other's S hold, so the second upgrader must get a deadlock error, not
  // hang.
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, kRelA, LockMode::kShared).ok());

  std::atomic<bool> t1_upgraded{false};
  std::thread t1([&] {
    EXPECT_TRUE(lm.Acquire(1, kRelA, LockMode::kExclusive).ok());
    t1_upgraded = true;
  });
  // Wait until txn 1 is actually blocked on the upgrade.
  while (lm.DumpWaitsFor().empty()) {
    std::this_thread::yield();
  }
  auto st = lm.Acquire(2, kRelA, LockMode::kExclusive);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_FALSE(t1_upgraded);

  // The victim aborts; the survivor's upgrade is granted.
  lm.ReleaseAll(2);
  t1.join();
  EXPECT_TRUE(t1_upgraded);
  EXPECT_TRUE(lm.Holds(1, kRelA, LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumLockedRelations(), 0u);
}

TEST(LockManager, ReentrantAcquireAfterUpgrade) {
  LockManager lm;
  lm.set_debug_invariants(true);
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kExclusive).ok());  // sole holder
  // Re-entrant acquires in either mode must be no-op grants, not self-waits,
  // and the X hold must survive them (no downgrade).
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, kRelA, LockMode::kExclusive));

  // History records actual grants, not re-entrant no-ops: the S grant and the
  // S -> X upgrade.
  const auto history = lm.AcquisitionHistory(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_FALSE(history[0].upgrade);
  EXPECT_TRUE(history[1].upgrade);
  EXPECT_EQ(history[1].mode, LockMode::kExclusive);
  EXPECT_GT(history[1].seq, history[0].seq);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.violations().empty());
}

TEST(LockManager, ReleaseAllWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(2, kRelA, LockMode::kShared).ok());
    granted = true;
  });
  while (lm.DumpWaitsFor().empty()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(granted);
  lm.ReleaseAll(1);  // must wake the waiter, not strand it
  t.join();
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(2, kRelA, LockMode::kShared));
  lm.ReleaseAll(2);
}

TEST(LockManager, WaitsForDumpNamesBlockedTxn) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(7, kRelA, LockMode::kExclusive).ok());
  std::thread t([&] { EXPECT_TRUE(lm.Acquire(8, kRelA, LockMode::kShared).ok()); });
  while (lm.DumpWaitsFor().empty()) {
    std::this_thread::yield();
  }
  const std::string dump = lm.DumpWaitsFor();
  EXPECT_NE(dump.find("txn 8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("rel " + std::to_string(kRelA)), std::string::npos) << dump;
  lm.ReleaseAll(7);
  t.join();
  lm.ReleaseAll(8);
  EXPECT_TRUE(lm.DumpWaitsFor().empty());
}

TEST(LockManager, AcquireAfterReleaseIsStrict2plViolation) {
  LockManager lm;
  lm.set_debug_invariants(true);
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kShared).ok());
  lm.ReleaseAll(1);
  // Strict 2PL forbids growing after shrinking. The acquisition itself still
  // succeeds (the check is diagnostic, not enforcing) but is recorded.
  ASSERT_TRUE(lm.Acquire(1, kRelB, LockMode::kShared).ok());
  const auto violations = lm.violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("2PL violation"), std::string::npos) << violations[0];
  lm.ReleaseAll(1);

  // A fresh TxnId (the normal case after commit) is not a violation.
  lm.ClearViolations();
  ASSERT_TRUE(lm.Acquire(2, kRelA, LockMode::kShared).ok());
  lm.ReleaseAll(2);
  EXPECT_TRUE(lm.violations().empty());
}

TEST(LockManager, BlockingWithPagePinnedIsLatchLockInversion) {
  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&store, &clock, DiskParams{}));
  ASSERT_TRUE(sw.Get(kDeviceMagneticDisk)->CreateRelation(1).ok());
  sw.BindRelation(1, kDeviceMagneticDisk);
  BufferPool pool(&sw, 8, &clock);

  LockManager lm;
  lm.set_debug_invariants(true);
  ASSERT_TRUE(lm.Acquire(1, kRelA, LockMode::kExclusive).ok());

  std::thread t([&] {
    // This thread holds a page pin while blocking on the table lock — the
    // ordering inversion that can starve eviction. The instrumentation must
    // record it (with the waits-for graph) without affecting the grant.
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    EXPECT_GT(BufferPool::ThreadPinCount(), 0);
    EXPECT_TRUE(lm.Acquire(2, kRelA, LockMode::kShared).ok());
  });
  while (lm.DumpWaitsFor().empty()) {
    std::this_thread::yield();
  }
  lm.ReleaseAll(1);
  t.join();

  const auto violations = lm.violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("latch-lock inversion"), std::string::npos)
      << violations[0];
  EXPECT_NE(violations[0].find("waits-for"), std::string::npos) << violations[0];
  lm.ReleaseAll(2);

  // Blocking with no pins held is clean.
  lm.ClearViolations();
  ASSERT_TRUE(lm.Acquire(3, kRelA, LockMode::kExclusive).ok());
  std::thread t2([&] { EXPECT_TRUE(lm.Acquire(4, kRelA, LockMode::kShared).ok()); });
  while (lm.DumpWaitsFor().empty()) {
    std::this_thread::yield();
  }
  lm.ReleaseAll(3);
  t2.join();
  lm.ReleaseAll(4);
  EXPECT_TRUE(lm.violations().empty());
}

TEST(LockManager, ConcurrentStressStaysConsistent) {
  // TSan target: hammer a small lock table from several threads with a
  // consistent acquisition order (no deadlocks possible), with concurrent
  // introspection calls mixed in. Run with scripts/check.sh tsan.
  LockManager lm;
  lm.set_debug_invariants(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<int> critical{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kIters; ++j) {
        const TxnId txn = static_cast<TxnId>(1 + i + kThreads * j);
        ASSERT_TRUE(lm.Acquire(txn, kRelA, LockMode::kShared).ok());
        ASSERT_TRUE(lm.Acquire(txn, kRelB, LockMode::kExclusive).ok());
        const int in = critical.fetch_add(1);
        EXPECT_EQ(in, 0) << "X lock on kRelB must be exclusive";
        critical.fetch_sub(1);
        if (j % 16 == 0) {
          (void)lm.DumpWaitsFor();
          (void)lm.AcquisitionHistory(txn);
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(lm.NumLockedRelations(), 0u);
  EXPECT_TRUE(lm.violations().empty());
}

}  // namespace
}  // namespace invfs
