// Unit + property tests: B-tree access method and the order-preserving key
// codec.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/access/btree.h"
#include "src/buffer/buffer_pool.h"
#include "src/util/random.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- key codec

TEST(KeyCodec, IntOrderPreserved) {
  const int32_t values[] = {INT32_MIN, -1000, -1, 0, 1, 42, 1000, INT32_MAX};
  for (size_t i = 1; i < std::size(values); ++i) {
    BtreeKey a = EncodeInt4Key(values[i - 1]);
    BtreeKey b = EncodeInt4Key(values[i]);
    EXPECT_LT(a, b) << values[i - 1] << " vs " << values[i];
  }
}

TEST(KeyCodec, Int8OrderPreserved) {
  const int64_t values[] = {INT64_MIN, -5'000'000'000, -1, 0, 7, 5'000'000'000,
                            INT64_MAX};
  BtreeKey prev;
  for (int64_t v : values) {
    auto key = EncodeKey(std::vector<Value>{Value::Int8(v)});
    ASSERT_TRUE(key.ok());
    if (!prev.empty()) {
      EXPECT_LT(prev, *key) << v;
    }
    prev = *key;
  }
}

TEST(KeyCodec, FloatTotalOrder) {
  const double values[] = {-1e300, -2.5, -0.0, 0.0, 1e-300, 3.14, 1e300};
  BtreeKey prev;
  for (double v : values) {
    auto key = EncodeKey(std::vector<Value>{Value::Float8(v)});
    ASSERT_TRUE(key.ok());
    if (!prev.empty()) {
      EXPECT_LE(prev, *key) << v;
    }
    prev = *key;
  }
}

TEST(KeyCodec, TextOrderPreservedAndNulRejected) {
  EXPECT_LT(EncodeTextKey("abc"), EncodeTextKey("abd"));
  EXPECT_LT(EncodeTextKey("ab"), EncodeTextKey("abc"));  // prefix sorts first
  EXPECT_LT(EncodeTextKey(""), EncodeTextKey("a"));
  BtreeKey out;
  EXPECT_FALSE(AppendKeyPart(Value::Text(std::string("a\0b", 3)), &out).ok());
}

TEST(KeyCodec, CompositeOrderMajorToMinor) {
  auto key = [](Oid parent, const char* name) {
    auto k = EncodeKey(std::vector<Value>{Value::MakeOid(parent), Value::Text(name)});
    EXPECT_TRUE(k.ok());
    return *k;
  };
  EXPECT_LT(key(1, "zzz"), key(2, "aaa")) << "first column dominates";
  EXPECT_LT(key(2, "aaa"), key(2, "aab"));
}

TEST(KeyCodec, NullsNotIndexable) {
  EXPECT_FALSE(EncodeKey(std::vector<Value>{Value::Null()}).ok());
}

// ---------------------------------------------------------------- B-tree

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() {
    sw_.Register(kDeviceMagneticDisk, std::make_unique<NvramDevice>(&store_));
    pool_ = std::make_unique<BufferPool>(&sw_, 64, &clock_);
    sw_.BindRelation(1, kDeviceMagneticDisk);
    EXPECT_TRUE(sw_.Get(kDeviceMagneticDisk)->CreateRelation(1).ok());
    auto tree = BTree::Create(1, pool_.get());
    EXPECT_TRUE(tree.ok());
    tree_ = std::move(*tree);
  }

  SimClock clock_;
  MemBlockStore store_;
  DeviceSwitch sw_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_->Insert(EncodeInt4Key(5), Tid{1, 2}).ok());
  auto tids = tree_->Lookup(EncodeInt4Key(5));
  ASSERT_TRUE(tids.ok());
  ASSERT_EQ(tids->size(), 1u);
  EXPECT_EQ((*tids)[0], (Tid{1, 2}));
  EXPECT_TRUE(tree_->Lookup(EncodeInt4Key(6))->empty());
}

TEST_F(BTreeTest, DuplicateKeysKeepAllTids) {
  for (uint16_t s = 0; s < 5; ++s) {
    ASSERT_TRUE(tree_->Insert(EncodeInt4Key(9), Tid{0, s}).ok());
  }
  auto tids = tree_->Lookup(EncodeInt4Key(9));
  ASSERT_TRUE(tids.ok());
  EXPECT_EQ(tids->size(), 5u);
}

TEST_F(BTreeTest, RemoveSpecificEntry) {
  ASSERT_TRUE(tree_->Insert(EncodeInt4Key(9), Tid{0, 1}).ok());
  ASSERT_TRUE(tree_->Insert(EncodeInt4Key(9), Tid{0, 2}).ok());
  ASSERT_TRUE(tree_->Remove(EncodeInt4Key(9), Tid{0, 1}).ok());
  auto tids = tree_->Lookup(EncodeInt4Key(9));
  ASSERT_TRUE(tids.ok());
  ASSERT_EQ(tids->size(), 1u);
  EXPECT_EQ((*tids)[0], (Tid{0, 2}));
  EXPECT_TRUE(tree_->Remove(EncodeInt4Key(9), Tid{0, 1}).IsNotFound());
}

TEST_F(BTreeTest, SplitsPreserveEverything) {
  // Enough entries to force several leaf and internal splits.
  constexpr int kN = 20000;
  Rng rng(11);
  std::vector<int32_t> keys;
  keys.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    keys.push_back(static_cast<int32_t>(rng.Next() % 1'000'000));
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        tree_->Insert(EncodeInt4Key(keys[i]), Tid{static_cast<uint32_t>(i), 0}).ok());
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_EQ(*tree_->CountEntries(), static_cast<uint64_t>(kN));
  // Spot-check lookups.
  for (int i = 0; i < kN; i += 997) {
    auto tids = tree_->Lookup(EncodeInt4Key(keys[i]));
    ASSERT_TRUE(tids.ok());
    bool found = false;
    for (Tid t : *tids) {
      found |= t.block == static_cast<uint32_t>(i);
    }
    EXPECT_TRUE(found) << "key " << keys[i];
  }
}

TEST_F(BTreeTest, SequentialInsertOrderedScan) {
  for (int32_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree_->Insert(EncodeInt4Key(k), Tid{static_cast<uint32_t>(k), 0}).ok());
  }
  auto it = tree_->Seek({});
  ASSERT_TRUE(it.ok());
  int32_t expected = 0;
  while (it->Valid()) {
    EXPECT_EQ(it->key(), EncodeInt4Key(expected));
    ++expected;
    ASSERT_TRUE(it->Advance().ok());
  }
  EXPECT_EQ(expected, 5000);
}

TEST_F(BTreeTest, SeekPositionsAtLowerBound) {
  for (int32_t k = 0; k < 100; k += 10) {
    ASSERT_TRUE(tree_->Insert(EncodeInt4Key(k), Tid{0, 0}).ok());
  }
  auto it = tree_->Seek(EncodeInt4Key(35));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), EncodeInt4Key(40));
}

TEST_F(BTreeTest, TextKeysWork) {
  const char* names[] = {"passwd", "group", "hosts", "fstab", "motd"};
  for (uint16_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree_->Insert(EncodeTextKey(names[i]), Tid{0, i}).ok());
  }
  auto tids = tree_->Lookup(EncodeTextKey("hosts"));
  ASSERT_TRUE(tids.ok());
  ASSERT_EQ(tids->size(), 1u);
  EXPECT_EQ((*tids)[0].slot, 2);
}

TEST_F(BTreeTest, OversizedKeyRejected) {
  BtreeKey huge(4000, std::byte{1});
  EXPECT_FALSE(tree_->Insert(huge, Tid{0, 0}).ok());
}

TEST_F(BTreeTest, PersistsThroughPoolFlush) {
  for (int32_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree_->Insert(EncodeInt4Key(k), Tid{static_cast<uint32_t>(k), 0}).ok());
  }
  ASSERT_TRUE(pool_->FlushAndInvalidate().ok());
  auto reopened = BTree::Open(1, pool_.get());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->CountEntries(), 3000u);
  auto tids = (*reopened)->Lookup(EncodeInt4Key(2999));
  ASSERT_TRUE(tids.ok());
  EXPECT_EQ(tids->size(), 1u);
}

// Property test: random interleaved inserts/removes vs a reference multimap.
class BTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeProperty, MatchesReferenceModel) {
  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk, std::make_unique<NvramDevice>(&store));
  BufferPool pool(&sw, 64, &clock);
  sw.BindRelation(1, kDeviceMagneticDisk);
  ASSERT_TRUE(sw.Get(kDeviceMagneticDisk)->CreateRelation(1).ok());
  auto tree = BTree::Create(1, &pool);
  ASSERT_TRUE(tree.ok());

  Rng rng(GetParam());
  std::multimap<int32_t, Tid> reference;
  uint16_t next_slot = 0;
  for (int step = 0; step < 4000; ++step) {
    const int32_t key = static_cast<int32_t>(rng.Uniform(200));
    if (rng.Uniform(3) != 0 || reference.empty()) {
      Tid tid{static_cast<uint32_t>(step), next_slot++};
      ASSERT_TRUE((*tree)->Insert(EncodeInt4Key(key), tid).ok());
      reference.emplace(key, tid);
    } else {
      auto range = reference.equal_range(key);
      if (range.first != range.second) {
        Tid victim = range.first->second;
        ASSERT_TRUE((*tree)->Remove(EncodeInt4Key(key), victim).ok());
        reference.erase(range.first);
      }
    }
    if (step % 500 == 0) {
      ASSERT_TRUE((*tree)->CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_EQ(*(*tree)->CountEntries(), reference.size());
  for (int32_t key = 0; key < 200; ++key) {
    auto tids = (*tree)->Lookup(EncodeInt4Key(key));
    ASSERT_TRUE(tids.ok());
    std::multiset<uint64_t> got, want;
    for (Tid t : *tids) {
      got.insert((static_cast<uint64_t>(t.block) << 16) | t.slot);
    }
    auto range = reference.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      want.insert((static_cast<uint64_t>(it->second.block) << 16) | it->second.slot);
    }
    EXPECT_EQ(got, want) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace invfs
