// Unit tests: commit log, snapshot visibility, 2PL lock manager.

#include <gtest/gtest.h>

#include <thread>

#include "src/catalog/database.h"
#include "src/txn/commit_log.h"
#include "src/util/bytes.h"
#include "src/txn/lock_manager.h"
#include "src/txn/snapshot.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- CommitLog

class CommitLogTest : public ::testing::Test {
 protected:
  CommitLogTest() : dev_(&store_) {}
  MemBlockStore store_;
  NvramDevice dev_;  // zero-cost device keeps these tests about semantics
};

// Forwards to an NvramDevice but fails every WriteBlock while armed, to
// exercise the flush-failure paths.
class FailingWriteDevice final : public DeviceManager {
 public:
  explicit FailingWriteDevice(BlockStore* store) : inner_(store) {}

  std::string_view name() const override { return "failing-write"; }
  Status CreateRelation(Oid rel) override { return inner_.CreateRelation(rel); }
  Status DropRelation(Oid rel) override { return inner_.DropRelation(rel); }
  bool RelationExists(Oid rel) const override { return inner_.RelationExists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return inner_.NumBlocks(rel); }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override {
    return inner_.ReadBlock(rel, block, out);
  }
  Status WriteBlock(Oid rel, uint32_t block, std::span<const std::byte> data) override {
    if (fail_writes.load()) {
      return Status::Internal("injected write failure");
    }
    return inner_.WriteBlock(rel, block, data);
  }

  std::atomic<bool> fail_writes{false};

 private:
  NvramDevice inner_;
};

TEST(CommitLogFailureTest, UnflushedCommitIsNeverVisible) {
  MemBlockStore store;
  FailingWriteDevice dev(&store);
  auto log_or = CommitLog::Open(&dev);
  ASSERT_TRUE(log_or.ok());
  CommitLog& log = **log_or;

  const TxnId xid = kBootstrapTxn + 1;
  ASSERT_TRUE(log.BeginTxn(xid).ok());
  dev.fail_writes.store(true);
  EXPECT_FALSE(log.CommitTxn(xid, 42).ok());

  // The commit decision never reached the device, so a crash right now would
  // recover xid as aborted. Visibility must agree: readers may not observe a
  // commit that recovery could take back.
  EXPECT_EQ(log.StatusOf(xid), TxnStatus::kInProgress);
  EXPECT_EQ(log.CommitTimeOf(xid), 0u);
  EXPECT_FALSE(log.CommittedBefore(xid, 1000));

  // What a crash actually does: reopen over the same store sees the
  // in-progress entry and aborts it — consistent with what readers saw.
  NvramDevice clean(&store);
  auto reopened = CommitLog::Open(&clean);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->StatusOf(xid), TxnStatus::kAborted);
}

TEST(CommitLogFailureTest, UndurableDeleterIsNotDeadForever) {
  MemBlockStore store;
  FailingWriteDevice dev(&store);
  auto log_or = CommitLog::Open(&dev);
  ASSERT_TRUE(log_or.ok());
  CommitLog& log = **log_or;

  // A deleter whose commit decision never reached the device: in memory the
  // entry may carry kCommitted, but its covering flush failed, so a crash
  // right now would recover it as aborted — and the deleted version would be
  // live again.
  const TxnId deleter = kBootstrapTxn + 1;
  ASSERT_TRUE(log.BeginTxn(deleter).ok());
  dev.fail_writes.store(true);
  EXPECT_FALSE(log.CommitTxn(deleter, 100).ok());

  TupleMeta meta;
  meta.xmin = kBootstrapTxn;
  meta.xmax = deleter;

  // Vacuum's archiving criterion must say "not dead": IsDeadForever reads
  // status through the same durability gate as visibility, so the
  // committed-but-unflushed delete does not qualify. Archiving here would
  // destroy a version that crash recovery still needs.
  Snapshot snap;
  snap.log = &log;
  EXPECT_FALSE(snap.IsDeadForever(meta))
      << "vacuum would archive a version whose deleter's commit is not durable";
  // The version is still visible, consistently with not-dead.
  EXPECT_TRUE(snap.IsVisible(meta));
}

TEST_F(CommitLogTest, LifecycleOfOneTxn) {
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->BeginTxn(5).ok());
  EXPECT_EQ((*log)->StatusOf(5), TxnStatus::kInProgress);
  ASSERT_TRUE((*log)->CommitTxn(5, 1234).ok());
  EXPECT_EQ((*log)->StatusOf(5), TxnStatus::kCommitted);
  EXPECT_EQ((*log)->CommitTimeOf(5), 1234u);
  EXPECT_TRUE((*log)->CommittedBefore(5, 1234));
  EXPECT_TRUE((*log)->CommittedBefore(5, 9999));
  EXPECT_FALSE((*log)->CommittedBefore(5, 1233));
}

TEST_F(CommitLogTest, BootstrapAlwaysCommittedAtZero) {
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->StatusOf(kBootstrapTxn), TxnStatus::kCommitted);
  EXPECT_TRUE((*log)->CommittedBefore(kBootstrapTxn, 0));
}

TEST_F(CommitLogTest, AbortIsRemembered) {
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->BeginTxn(3).ok());
  ASSERT_TRUE((*log)->AbortTxn(3).ok());
  EXPECT_EQ((*log)->StatusOf(3), TxnStatus::kAborted);
  EXPECT_FALSE((*log)->CommittedBefore(3, ~0ull));
}

TEST_F(CommitLogTest, ReopenRecoversStateAndAbortsInFlight) {
  {
    auto log = CommitLog::Open(&dev_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->BeginTxn(2).ok());
    ASSERT_TRUE((*log)->CommitTxn(2, 50).ok());
    ASSERT_TRUE((*log)->BeginTxn(3).ok());  // never commits: "crash"
  }
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->StatusOf(2), TxnStatus::kCommitted);
  EXPECT_EQ((*log)->CommitTimeOf(2), 50u);
  EXPECT_EQ((*log)->StatusOf(3), TxnStatus::kAborted)
      << "in-progress at crash must read as aborted";
  EXPECT_GE((*log)->MaxTxnId(), 3u) << "xids must not be reused after crash";
}

// Regression: recovery used to convert in-progress entries to aborted only in
// memory. A second crash before the next flush resurrected them as
// in-progress on disk, and offline readers of the raw image (invfs_check)
// disagreed with the running system about their fate. Recovery must persist
// the conversion.
TEST_F(CommitLogTest, DoubleCrashKeepsConvertedAbortsOnDisk) {
  {
    auto log = CommitLog::Open(&dev_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->BeginTxn(2).ok());  // crash #1 with txn 2 in flight
  }
  {
    auto log = CommitLog::Open(&dev_);  // recovery converts 2 to aborted...
    ASSERT_TRUE(log.ok());
    ASSERT_EQ((*log)->StatusOf(2), TxnStatus::kAborted);
    // ...and crash #2 happens before any further transition could flush.
  }
  // The raw device image must already record the abort (16-byte entries, u32
  // status first — the documented on-disk layout).
  std::vector<std::byte> raw(kPageSize);
  ASSERT_TRUE(dev_.ReadBlock(kCommitLogRelOid, 0, raw).ok());
  EXPECT_EQ(GetU32(raw.data() + 2 * 16),
            static_cast<uint32_t>(TxnStatus::kAborted))
      << "recovery left the converted abort unpersisted";

  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->StatusOf(2), TxnStatus::kAborted);
  EXPECT_GE((*log)->MaxTxnId(), 2u) << "xid 2 must never be reallocated";
}

TEST_F(CommitLogTest, GroupCommitCountersAreExactWithoutConcurrency) {
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  for (TxnId x = 2; x < 12; ++x) {
    ASSERT_TRUE((*log)->BeginTxn(x).ok());
    ASSERT_TRUE((*log)->CommitTxn(x, x).ok());
  }
  // 20 transitions, but only 11 durable waits: the first begin advances the
  // xid horizon (1 request) and covers the other 9 begins; each commit is a
  // request of its own. Single-threaded there is nobody to coalesce with, so
  // every request leads its own batch of one page write — already half the
  // one-write-per-transition cost, deterministically.
  EXPECT_EQ((*log)->persist_requests(), 11u);
  EXPECT_EQ((*log)->persist_batches(), 11u);
  EXPECT_EQ((*log)->device_page_writes(), 11u);
  // Aborts piggyback: no new batch, no new write.
  ASSERT_TRUE((*log)->BeginTxn(12).ok());
  const uint64_t batches = (*log)->persist_batches();
  ASSERT_TRUE((*log)->AbortTxn(12).ok());
  EXPECT_EQ((*log)->persist_batches(), batches);
}

TEST_F(CommitLogTest, ManyTxnsSpanLogPages) {
  {
    auto log = CommitLog::Open(&dev_);
    ASSERT_TRUE(log.ok());
    for (TxnId x = 2; x < 1200; ++x) {
      ASSERT_TRUE((*log)->BeginTxn(x).ok());
      ASSERT_TRUE((*log)->CommitTxn(x, x * 10).ok());
    }
  }
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->CommitTimeOf(600), 6000u);
  EXPECT_EQ((*log)->CommitTimeOf(1199), 11990u);
}

TEST_F(CommitLogTest, RejectsProtocolViolations) {
  auto log = CommitLog::Open(&dev_);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)->CommitTxn(77, 1).ok());  // never began
  ASSERT_TRUE((*log)->BeginTxn(8).ok());
  EXPECT_FALSE((*log)->BeginTxn(8).ok());  // reuse
  ASSERT_TRUE((*log)->CommitTxn(8, 1).ok());
  EXPECT_FALSE((*log)->AbortTxn(8).ok());  // already committed
}

// ------------------------------------------------------ Snapshot visibility

// Parametrized truth table: (xmin state, xmax state, snapshot kind) -> visible.
struct VisCase {
  const char* name;
  bool xmin_committed;
  Timestamp xmin_time;
  bool has_xmax;
  bool xmax_committed;
  Timestamp xmax_time;
  Timestamp as_of;
  bool expect_visible;
};

class VisibilityTest : public ::testing::TestWithParam<VisCase> {};

TEST_P(VisibilityTest, Matrix) {
  const VisCase& c = GetParam();
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log = CommitLog::Open(&dev);
  ASSERT_TRUE(log.ok());

  constexpr TxnId kIns = 10, kDel = 11;
  ASSERT_TRUE((*log)->BeginTxn(kIns).ok());
  if (c.xmin_committed) {
    ASSERT_TRUE((*log)->CommitTxn(kIns, c.xmin_time).ok());
  }
  ASSERT_TRUE((*log)->BeginTxn(kDel).ok());
  if (c.has_xmax && c.xmax_committed) {
    ASSERT_TRUE((*log)->CommitTxn(kDel, c.xmax_time).ok());
  }

  TupleMeta meta{0, kIns, c.has_xmax ? kDel : kInvalidTxn};
  Snapshot snap{c.as_of, kInvalidTxn, log->get(), nullptr};
  EXPECT_EQ(snap.IsVisible(meta), c.expect_visible) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VisibilityTest,
    ::testing::Values(
        VisCase{"live_committed_row", true, 100, false, false, 0, kTimestampNow, true},
        VisCase{"uncommitted_insert", false, 0, false, false, 0, kTimestampNow, false},
        VisCase{"deleted_by_committed", true, 100, true, true, 200, kTimestampNow,
                false},
        VisCase{"delete_in_progress_still_visible", true, 100, true, false, 0,
                kTimestampNow, true},
        VisCase{"historical_before_insert", true, 100, false, false, 0, 99, false},
        VisCase{"historical_at_insert", true, 100, false, false, 0, 100, true},
        VisCase{"historical_between_versions", true, 100, true, true, 200, 150, true},
        VisCase{"historical_after_delete", true, 100, true, true, 200, 200, false},
        VisCase{"historical_uncommitted_insert", false, 0, false, false, 0, 500,
                false}),
    [](const ::testing::TestParamInfo<VisCase>& info) { return info.param.name; });

TEST(Snapshot, OwnWritesVisibleOnlyToSelfAndOnlyNow) {
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log = CommitLog::Open(&dev);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->BeginTxn(7).ok());
  TupleMeta mine{0, 7, kInvalidTxn};

  Snapshot self{kTimestampNow, 7, log->get(), nullptr};
  Snapshot other{kTimestampNow, 8, log->get(), nullptr};
  Snapshot historical{999999, 7, log->get(), nullptr};
  EXPECT_TRUE(self.IsVisible(mine));
  EXPECT_FALSE(other.IsVisible(mine));
  EXPECT_FALSE(historical.IsVisible(mine)) << "time travel never sees in-flight work";
}

TEST(Snapshot, OwnDeleteHidesRowFromSelf) {
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log = CommitLog::Open(&dev);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->BeginTxn(5).ok());
  ASSERT_TRUE((*log)->CommitTxn(5, 10).ok());
  ASSERT_TRUE((*log)->BeginTxn(6).ok());
  TupleMeta meta{0, 5, 6};  // I (txn 6) deleted a committed row
  Snapshot self{kTimestampNow, 6, log->get(), nullptr};
  Snapshot other{kTimestampNow, 7, log->get(), nullptr};
  EXPECT_FALSE(self.IsVisible(meta));
  EXPECT_TRUE(other.IsVisible(meta)) << "uncommitted delete invisible to others";
}

TEST(Snapshot, DeadForeverMatchesVacuumCriterion) {
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log = CommitLog::Open(&dev);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->BeginTxn(5).ok());
  ASSERT_TRUE((*log)->CommitTxn(5, 10).ok());
  ASSERT_TRUE((*log)->BeginTxn(6).ok());
  Snapshot snap{kTimestampNow, kInvalidTxn, log->get(), nullptr};
  EXPECT_FALSE(snap.IsDeadForever(TupleMeta{0, 5, kInvalidTxn}));
  EXPECT_FALSE(snap.IsDeadForever(TupleMeta{0, 5, 6})) << "deleter still running";
  ASSERT_TRUE((*log)->CommitTxn(6, 20).ok());
  EXPECT_TRUE(snap.IsDeadForever(TupleMeta{0, 5, 6}));
}

// -------------------------------------------------------------- LockManager

TEST(LockManager, SharedLocksAreCompatible) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, 100, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 100, LockMode::kShared));
}

TEST(LockManager, ReentrantAndUpgrade) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());  // sole holder
  EXPECT_TRUE(lm.Holds(1, 100, LockMode::kExclusive));
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());  // X covers S
}

TEST(LockManager, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired);
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired);
}

TEST(LockManager, DeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive).ok());
  std::thread t1([&] {
    // Txn 1 waits for 200 (held by 2).
    Status s = lm.Acquire(1, 200, LockMode::kExclusive);
    // Once txn 2's attempt deadlocks and it releases, this can be granted.
    EXPECT_TRUE(s.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Txn 2 requesting 100 closes the cycle: must be told, not blocked forever.
  Status s = lm.Acquire(2, 100, LockMode::kExclusive);
  EXPECT_TRUE(s.IsDeadlock());
  lm.ReleaseAll(2);
  t1.join();
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumLockedRelations(), 0u);
}

TEST(LockManager, ReleaseAllFreesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, 200, LockMode::kShared).ok());
  EXPECT_EQ(lm.NumLockedRelations(), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumLockedRelations(), 0u);
  ASSERT_TRUE(lm.Acquire(2, 100, LockMode::kExclusive).ok());
}

// -------------------------------------------------- concurrent transactions

TEST(TxnConcurrency, TwoWritersSerializeOnTable) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;
  auto setup = db.Begin();
  auto table = db.catalog().CreateTable(*setup, "t", Schema{{"k", TypeId::kInt4}},
                                        kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db.Commit(*setup).ok());

  constexpr int kPerWriter = 50;
  auto writer = [&](int base) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db.LockTable(*txn, *table, LockMode::kExclusive).ok());
    for (int i = 0; i < kPerWriter; ++i) {
      ASSERT_TRUE(db.InsertRow(*txn, *table, {Value::Int4(base + i)}).ok());
    }
    ASSERT_TRUE(db.Commit(*txn).ok());
  };
  std::thread a(writer, 0);
  std::thread b(writer, 1000);
  a.join();
  b.join();

  auto reader = db.Begin();
  int count = 0;
  auto it = (*table)->heap->Scan(db.SnapshotFor(*reader));
  while (it.Next()) {
    ++count;
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(count, 2 * kPerWriter);
  ASSERT_TRUE(db.Commit(*reader).ok());
}

}  // namespace
}  // namespace invfs
