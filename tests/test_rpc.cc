// Unit tests: the RPC layer — marshalling, dispatch, error propagation, and
// behavioural parity between remote and local sessions.

#include <gtest/gtest.h>

#include "src/harness/worlds.h"
#include "src/net/rpc.h"
#include "src/util/random.h"

namespace invfs {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world = InversionWorld::Create();
    ASSERT_TRUE(world.ok());
    world_ = std::move(*world);
    server_ = std::make_unique<InversionServer>(&world_->fs());
    net_ = std::make_unique<NetModel>(&world_->clock(), NetParams{});
    transport_ = std::make_unique<LoopbackTransport>(server_.get(), net_.get());
    client_ = std::make_unique<RemoteFileClient>(transport_.get());
  }

  std::unique_ptr<InversionWorld> world_;
  std::unique_ptr<InversionServer> server_;
  std::unique_ptr<NetModel> net_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<RemoteFileClient> client_;
};

TEST_F(RpcTest, FileRoundtripOverTheWire) {
  ASSERT_TRUE(client_->p_begin().ok());
  auto fd = client_->p_creat("/remote.txt");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string data = "bytes over a marshalled protocol";
  auto n = client_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size())));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, static_cast<int64_t>(data.size()));
  ASSERT_TRUE(client_->p_lseek(*fd, 0, Whence::kSet).ok());
  std::vector<std::byte> buf(data.size());
  auto read = client_->p_read(*fd, buf);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, static_cast<int64_t>(data.size()));
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), data.size()), 0);
  ASSERT_TRUE(client_->p_close(*fd).ok());
  ASSERT_TRUE(client_->p_commit().ok());
}

TEST_F(RpcTest, TransactionsWorkRemotely) {
  ASSERT_TRUE(client_->p_begin().ok());
  auto fd = client_->p_creat("/doomed.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  ASSERT_TRUE(client_->p_abort().ok());
  EXPECT_TRUE(client_->stat("/doomed.txt").status().IsNotFound());
  // Nested transaction rejected remotely, same as locally.
  ASSERT_TRUE(client_->p_begin().ok());
  EXPECT_FALSE(client_->p_begin().ok());
  ASSERT_TRUE(client_->p_commit().ok());
}

TEST_F(RpcTest, NamespaceOpsAndStat) {
  ASSERT_TRUE(client_->mkdir("/dir").ok());
  auto fd = client_->p_creat("/dir/a.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  ASSERT_TRUE(client_->rename("/dir/a.txt", "/dir/b.txt").ok());
  auto st = client_->stat("/dir/b.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_directory);
  auto entries = client_->readdir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "b.txt");
  ASSERT_TRUE(client_->unlink("/dir/b.txt").ok());
  EXPECT_TRUE(client_->readdir("/dir")->empty());
}

TEST_F(RpcTest, TimeTravelOpenOverTheWire) {
  auto fd = client_->p_creat("/tt.txt");
  ASSERT_TRUE(fd.ok());
  const std::string v1 = "one";
  ASSERT_TRUE(client_->p_write(*fd, std::as_bytes(std::span(v1.data(), 3))).ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  const Timestamp t1 = world_->db().Now();
  fd = client_->p_open("/tt.txt", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  const std::string v2 = "two";
  ASSERT_TRUE(client_->p_write(*fd, std::as_bytes(std::span(v2.data(), 3))).ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());

  auto old_fd = client_->p_open("/tt.txt", OpenMode::kRead, t1);
  ASSERT_TRUE(old_fd.ok());
  std::vector<std::byte> buf(3);
  ASSERT_TRUE(client_->p_read(*old_fd, buf).ok());
  EXPECT_EQ(std::memcmp(buf.data(), "one", 3), 0);
  ASSERT_TRUE(client_->p_close(*old_fd).ok());
  EXPECT_EQ(client_->p_open("/tt.txt", OpenMode::kWrite, t1).status().code(),
            ErrorCode::kReadOnly);
}

TEST_F(RpcTest, QueryOverTheWire) {
  auto fd = client_->p_creat("/q.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  auto rs = client_->Query(
      "retrieve (n.filename) from n in naming where n.filename = \"q.txt\"");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsText(), "q.txt");
}

TEST_F(RpcTest, ErrorsCrossTheWireWithCodes) {
  EXPECT_TRUE(client_->p_open("/absent", OpenMode::kRead).status().IsNotFound());
  EXPECT_EQ(client_->p_read(999, std::span<std::byte>()).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_FALSE(client_->Query("retrieve garbage (").ok());
}

TEST_F(RpcTest, MalformedRequestRejectedNotCrashed) {
  std::vector<std::byte> garbage{std::byte{0xFF}, std::byte{0x00}, std::byte{0x13}};
  auto response = server_->Handle(garbage);
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(static_cast<uint8_t>(response[0]), 0) << "error response expected";
  // Truncated-but-valid-op request.
  std::vector<std::byte> truncated{std::byte{static_cast<uint8_t>(RpcOp::kWrite)}};
  response = server_->Handle(truncated);
  EXPECT_EQ(static_cast<uint8_t>(response[0]), 0);
}

TEST_F(RpcTest, FuzzedFramesAlwaysGetResponsesNeverCrash) {
  Rng rng(0xF422);
  // Pure random frames: garbage opcodes, garbage fields, random lengths.
  for (int i = 0; i < 400; ++i) {
    std::vector<std::byte> frame(rng.Uniform(48));
    for (auto& b : frame) {
      b = std::byte{static_cast<uint8_t>(rng.Uniform(256))};
    }
    auto response = server_->Handle(frame);
    ASSERT_FALSE(response.empty());
    ASSERT_LE(static_cast<uint8_t>(response[0]), 1u);
  }
  // Every opcode (valid and beyond) with randomly truncated argument tails:
  // the decoder must hit its sticky truncation flag, never read off the end.
  for (int op = 0; op <= 20; ++op) {
    for (int i = 0; i < 16; ++i) {
      std::vector<std::byte> frame;
      frame.push_back(std::byte{static_cast<uint8_t>(op)});
      const size_t tail = rng.Uniform(12);
      for (size_t t = 0; t < tail; ++t) {
        frame.push_back(std::byte{static_cast<uint8_t>(rng.Uniform(256))});
      }
      auto response = server_->Handle(frame);
      ASSERT_FALSE(response.empty());
      ASSERT_LE(static_cast<uint8_t>(response[0]), 1u);
    }
  }
}

TEST_F(RpcTest, OversizedReadLengthRejectedBeforeAllocation) {
  // A frame asking for a 4 GB read buffer: the server must refuse at its
  // trust boundary instead of allocating. The header (tenant, client id,
  // seq, epoch) must be well-formed so the frame reaches the arg decoder.
  ByteWriter w;
  w.Str("");   // tenant
  w.U64(77);   // client id
  w.U64(1);    // seq
  w.U32(1);    // epoch
  w.U8(static_cast<uint8_t>(RpcOp::kRead));
  w.U32(7);            // fd (bogus; never reached)
  w.U32(0xFFFFFFFFu);  // requested length
  auto response = server_->Handle(w.data());
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(static_cast<uint8_t>(response[0]), 0) << "error response expected";
}

TEST_F(RpcTest, WireCostIsCharged) {
  const uint64_t messages_before = net_->total_messages();
  const SimMicros t0 = world_->clock().Peek();
  auto fd = client_->p_creat("/cost.txt");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> page(8192, std::byte{1});
  ASSERT_TRUE(client_->p_write(*fd, page).ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_GE(net_->total_messages(), messages_before + 6);  // 3 calls x 2 legs
  EXPECT_GT(world_->clock().Peek(), t0);
}

TEST_F(RpcTest, RemoteAndLocalSessionsShareOneFileSystem) {
  // The paper: "the same Inversion file can be used by a database application
  // and by a file system client simultaneously."
  auto& local = world_->session();
  ASSERT_TRUE(local.p_begin().ok());
  auto fd = local.p_creat("/shared.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "written locally";
  ASSERT_TRUE(
      local.p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(local.p_close(*fd).ok());
  ASSERT_TRUE(local.p_commit().ok());

  auto remote_fd = client_->p_open("/shared.txt", OpenMode::kRead);
  ASSERT_TRUE(remote_fd.ok());
  std::vector<std::byte> buf(data.size());
  auto n = client_->p_read(*remote_fd, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), data.size()), 0);
  ASSERT_TRUE(client_->p_close(*remote_fd).ok());
}

}  // namespace
}  // namespace invfs
