// Unit tests for the observability layer: counter/gauge/histogram semantics
// (including percentiles), registry snapshots and dumps, the trace and span
// rings (including wrap-around), ScopedSpan context propagation, and the
// end-to-end span shape of an RPC write.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/harness/worlds.h"
#include "src/net/rpc.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace invfs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Everything huge lands in the final bucket rather than overflowing.
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, CountSumMeanAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 6u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  auto buckets = h.Buckets();
  EXPECT_EQ(buckets[0], 1u);  // the 0
  EXPECT_EQ(buckets[1], 1u);  // the 1
  EXPECT_EQ(buckets[3], 1u);  // the 5 (in [4,8))
}

TEST(HistogramTest, PercentileOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.999), 0u);
}

TEST(HistogramTest, PercentileReturnsBucketUpperBounds) {
  Histogram h;
  // 90 fast observations and 10 slow ones. The percentile is a conservative
  // upper bound: the top edge of the first bucket covering the target rank.
  for (int i = 0; i < 90; ++i) {
    h.Observe(3);  // bucket [2,4) -> upper bound 3
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(1000);  // bucket [512,1024) -> upper bound 1023
  }
  EXPECT_EQ(h.Percentile(0.5), 3u);
  EXPECT_EQ(h.Percentile(0.90), 3u);
  EXPECT_EQ(h.Percentile(0.99), 1023u);
  EXPECT_EQ(h.Percentile(0.999), 1023u);
  // Degenerate p values clamp to the first / last observation's bucket.
  EXPECT_EQ(h.Percentile(0.0), 3u);
  EXPECT_EQ(h.Percentile(1.0), 1023u);
}

TEST(SloTest, EmptyHistogramYieldsNoDataVerdict) {
  // An op class with zero observations must not fabricate a passing (or
  // failing) latency report out of Percentile's empty-histogram 0: the
  // verdict is "no data", distinct from "ok".
  MetricsRegistry reg;
  auto reports = EvaluateSlos(&reg, {{"p_read", 500, 5000, 20000}});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].count, 0u);
  EXPECT_EQ(reports[0].p50_us, 0u);
  EXPECT_EQ(reports[0].p999_us, 0u);
  EXPECT_TRUE(reports[0].ok) << "no observations is not evidence of violation";
  EXPECT_STREQ(SloVerdict(reports[0]), "no data");
}

TEST(SloTest, ExercisedClassYieldsOkOrViolated) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("op.latency_us", "p_read");
  for (int i = 0; i < 100; ++i) {
    h->Observe(100);
  }
  auto within = EvaluateSlos(&reg, {{"p_read", 500, 5000, 20000}});
  ASSERT_EQ(within.size(), 1u);
  EXPECT_GT(within[0].count, 0u);
  EXPECT_STREQ(SloVerdict(within[0]), "ok");

  auto beyond = EvaluateSlos(&reg, {{"p_read", 10, 10, 10}});
  ASSERT_EQ(beyond.size(), 1u);
  EXPECT_FALSE(beyond[0].ok);
  EXPECT_STREQ(SloVerdict(beyond[0]), "VIOLATED");
}

TEST(HistogramTest, PercentileOfSingleObservation) {
  Histogram h;
  h.Observe(0);
  // Bucket 0 holds exact zeros, so its upper bound is 0.
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.999), 0u);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct metrics.
  Counter* l1 = reg.GetCounter("x", "one");
  Counter* l2 = reg.GetCounter("x", "two");
  EXPECT_NE(l1, l2);
  EXPECT_NE(a, l1);
  // Kinds live in separate namespaces keyed by (name, label).
  Gauge* g = reg.GetGauge("x");
  Histogram* h = reg.GetHistogram("x");
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(a));
  EXPECT_NE(static_cast<void*>(h), static_cast<void*>(a));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b.counter")->Add(2);
  reg.GetGauge("a.gauge")->Set(-5);
  reg.GetHistogram("c.hist")->Observe(16);
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, -5);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].value, 2);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].count, 1u);
  EXPECT_EQ(snap[2].sum, 16u);
}

TEST(MetricsRegistryTest, DumpTextAndJsonContainMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("buffer.hits")->Add(7);
  reg.GetHistogram("log.flush_us", "disk")->Observe(100);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("buffer.hits"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("log.flush_us{disk}"), std::string::npos);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"name\": \"buffer.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TraceRingTest, RecordsInOrder) {
  TraceRing ring;
  ring.Record(TraceEvent::kTxnBegin, 10);
  ring.Record(TraceEvent::kTxnCommit, 10, 2);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].event, TraceEvent::kTxnBegin);
  EXPECT_EQ(snap[0].a, 10u);
  EXPECT_EQ(snap[1].event, TraceEvent::kTxnCommit);
  EXPECT_EQ(snap[1].b, 2u);
  EXPECT_LT(snap[0].seq, snap[1].seq);
  EXPECT_EQ(ring.TotalRecorded(), 2u);
}

TEST(TraceRingTest, WrapKeepsOnlyTheNewest) {
  TraceRing ring;
  const size_t n = TraceRing::kDefaultCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    ring.Record(TraceEvent::kPageMiss, i);
  }
  auto snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), TraceRing::kDefaultCapacity);
  EXPECT_EQ(ring.TotalRecorded(), n);
  // The survivors are the newest capacity() records, still in seq order.
  EXPECT_EQ(snap.front().a, n - TraceRing::kDefaultCapacity);
  EXPECT_EQ(snap.back().a, n - 1);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

TEST(TraceRingTest, WrapCountsDrops) {
  TraceRing ring(128);
  for (size_t i = 0; i < 128; ++i) {
    ring.Record(TraceEvent::kPageMiss, i);
  }
  // Exactly full: nothing has been overwritten yet.
  EXPECT_EQ(ring.TotalDropped(), 0u);
  for (size_t i = 0; i < 50; ++i) {
    ring.Record(TraceEvent::kPageMiss, 128 + i);
  }
  EXPECT_EQ(ring.TotalDropped(), 50u);
  EXPECT_EQ(ring.TotalRecorded(), 178u);
}

TEST(TraceRingTest, CapacityIsConfigurableAndRoundedToPow2) {
  TraceRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  for (size_t i = 0; i < 200; ++i) {
    ring.Record(TraceEvent::kPageMiss, i);
  }
  auto snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), 128u);
  EXPECT_EQ(snap.back().a, 199u);
}

TEST(TraceEventTest, NamesAreStable) {
  EXPECT_STREQ(TraceEventName(TraceEvent::kTxnBegin), "txn.begin");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPageMiss), "page.miss");
  EXPECT_STREQ(TraceEventName(TraceEvent::kGroupCommitFlush), "log.flush");
  EXPECT_STREQ(TraceEventName(TraceEvent::kDeviceRetry), "device.retry");
  EXPECT_STREQ(TraceEventName(TraceEvent::kDeviceReadOnlyTrip),
               "device.read_only_trip");
  EXPECT_STREQ(TraceEventName(TraceEvent::kLogPoisoned), "log.poisoned");
}

TEST(MetricsRegistryTest, DumpsRenderHistogramPercentiles) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("op.latency_us", "p_read");
  for (int i = 0; i < 95; ++i) {
    h->Observe(3);
  }
  for (int i = 0; i < 5; ++i) {
    h->Observe(1000);
  }
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("p50=3"), std::string::npos);
  EXPECT_NE(text.find("p99=1023"), std::string::npos);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"p50\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 1023"), std::string::npos);
  EXPECT_NE(json.find("\"p999\": 1023"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": "), std::string::npos);
  EXPECT_NE(json.find("\"mean\": "), std::string::npos);
}

TEST(SpanRingTest, RecordsAndWraps) {
  SpanRing ring(128);
  EXPECT_EQ(ring.capacity(), 128u);
  for (uint64_t i = 0; i < 200; ++i) {
    SpanRecord r;
    r.trace_id = 1;
    r.span_id = i + 1;
    r.parent_id = 0;
    r.name = "test.span";
    r.start_micros = i;
    r.dur_micros = 5;
    r.a = i;
    ring.RecordSpan(r);
  }
  EXPECT_EQ(ring.TotalRecorded(), 200u);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 128u);
  // Survivors are the newest records, in publication order.
  EXPECT_EQ(snap.front().a, 200u - 128u);
  EXPECT_EQ(snap.back().a, 199u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

TEST(SpanRingTest, WrapCountsDrops) {
  SpanRing ring(64);
  SpanRecord r;
  r.trace_id = 1;
  r.name = "test.span";
  for (uint64_t i = 0; i < 64; ++i) {
    r.span_id = i + 1;
    ring.RecordSpan(r);
  }
  EXPECT_EQ(ring.TotalDropped(), 0u);
  for (uint64_t i = 0; i < 10; ++i) {
    r.span_id = 100 + i;
    ring.RecordSpan(r);
  }
  EXPECT_EQ(ring.TotalDropped(), 10u);
  EXPECT_EQ(ring.TotalRecorded(), 74u);
}

TEST(ScopedSpanTest, NestingLinksParentAndRestoresContext) {
  SpanRing ring;
  uint64_t outer_trace = 0;
  uint64_t outer_span = 0;
  uint64_t inner_span = 0;
  {
    ScopedSpan outer(&ring, "outer");
    outer_trace = outer.trace_id();
    outer_span = outer.span_id();
    {
      ScopedSpan inner(&ring, "inner", 7, 8);
      inner_span = inner.span_id();
      // Child joins the parent's trace with a fresh span id.
      EXPECT_EQ(inner.trace_id(), outer_trace);
      EXPECT_NE(inner_span, outer_span);
    }
    // After the child ends, a new span sees `outer` as its parent again.
    ScopedSpan sibling(&ring, "sibling");
    EXPECT_EQ(sibling.trace_id(), outer_trace);
  }
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Spans publish at End(), so children land before their parents.
  EXPECT_STREQ(snap[0].name, "inner");
  EXPECT_EQ(snap[0].trace_id, outer_trace);
  EXPECT_EQ(snap[0].parent_id, outer_span);
  EXPECT_EQ(snap[0].a, 7u);
  EXPECT_EQ(snap[0].b, 8u);
  EXPECT_STREQ(snap[1].name, "sibling");
  EXPECT_EQ(snap[1].parent_id, outer_span);
  EXPECT_STREQ(snap[2].name, "outer");
  EXPECT_EQ(snap[2].span_id, outer_span);
  EXPECT_EQ(snap[2].parent_id, 0u);
}

TEST(ScopedSpanTest, SeparateRootsGetSeparateTraces) {
  SpanRing ring;
  uint64_t first_trace = 0;
  {
    ScopedSpan root(&ring, "first");
    first_trace = root.trace_id();
  }
  {
    ScopedSpan root(&ring, "second");
    EXPECT_NE(root.trace_id(), first_trace);
    EXPECT_NE(root.trace_id(), 0u);
  }
}

TEST(ScopedSpanTest, NullRingIsInertAndKeepsContextClean) {
  ScopedSpan outer(nullptr, "noop");
  EXPECT_EQ(outer.trace_id(), 0u);
  EXPECT_EQ(outer.span_id(), 0u);
  // A real span opened next still starts a fresh trace: the no-op span did
  // not leak itself into the thread-local context.
  SpanRing ring;
  {
    ScopedSpan real(&ring, "real");
    EXPECT_NE(real.trace_id(), 0u);
  }
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].parent_id, 0u);
}

TEST(SpanNameInternTest, ReturnsStablePointerPerName) {
  const char* a = InternSpanName("device.read.disk0");
  const char* b = InternSpanName("device.read.disk0");
  const char* c = InternSpanName("device.read.disk1");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "device.read.disk0");
}

// End-to-end span shape: an RPC write against a cold cache must produce one
// causally linked tree — the rpc.write root, a p_write child, and (deeper in
// the same trace) a buffer-pool miss and a group-commit flush wait. This is
// the contract --breakdown and the invfs_spans relation rely on.
TEST(SpanShapeTest, RpcWriteTreeLinksBufferMissAndCommitFlush) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  // Seed a file locally (local p_* spans are roots of other traces and do
  // not collide with the single rpc.write root asserted below).
  InvSession& local = world.session();
  ASSERT_TRUE(local.p_begin().ok());
  auto fd = local.p_creat("/spanned.txt");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> block(8192, std::byte{0x42});
  ASSERT_TRUE(local.p_write(*fd, block).ok());
  ASSERT_TRUE(local.p_close(*fd).ok());
  ASSERT_TRUE(local.p_commit().ok());

  // Drop every cached page so the remote write's read-modify-write of the
  // existing chunk has to miss the buffer pool and touch the device.
  ASSERT_TRUE(world.db().FlushCaches().ok());

  InversionServer server(&world.fs());
  NetModel net(&world.clock(), NetParams{});
  LoopbackTransport transport(&server, &net);
  RemoteFileClient client(&transport);

  auto rfd = client.p_open("/spanned.txt", OpenMode::kWrite);
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  std::vector<std::byte> patch(16, std::byte{0x7});
  auto n = client.p_write(*rfd, patch);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  ASSERT_TRUE(client.p_close(*rfd).ok());

  const auto snap = world.db().metrics().spans().Snapshot();
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* rpc_write = nullptr;
  for (const SpanRecord& r : snap) {
    by_id[r.span_id] = &r;
    if (r.name != nullptr && std::string_view(r.name) == "rpc.write") {
      ASSERT_EQ(rpc_write, nullptr) << "expected exactly one rpc.write span";
      rpc_write = &r;
    }
  }
  ASSERT_NE(rpc_write, nullptr);
  EXPECT_EQ(rpc_write->parent_id, 0u) << "rpc.write must be a trace root";

  // p_write is a direct child of the RPC root, in the same trace.
  const SpanRecord* p_write = nullptr;
  for (const SpanRecord& r : snap) {
    if (r.name != nullptr && std::string_view(r.name) == "p_write" &&
        r.trace_id == rpc_write->trace_id) {
      p_write = &r;
    }
  }
  ASSERT_NE(p_write, nullptr);
  EXPECT_EQ(p_write->parent_id, rpc_write->span_id);

  // The buffer miss and the group-commit flush wait are descendants of the
  // RPC root: walk parent links back up to it.
  auto is_descendant_of_root = [&](const SpanRecord& r) {
    const SpanRecord* cur = &r;
    for (int hops = 0; hops < 16 && cur != nullptr; ++hops) {
      if (cur->span_id == rpc_write->span_id) {
        return true;
      }
      auto it = by_id.find(cur->parent_id);
      cur = it == by_id.end() ? nullptr : it->second;
    }
    return false;
  };
  bool saw_miss = false;
  bool saw_flush_wait = false;
  for (const SpanRecord& r : snap) {
    if (r.trace_id != rpc_write->trace_id || r.name == nullptr) {
      continue;
    }
    const std::string_view name(r.name);
    if (name == "buffer.miss" && is_descendant_of_root(r)) {
      saw_miss = true;
    }
    if (name == "log.flush.wait" && is_descendant_of_root(r)) {
      saw_flush_wait = true;
    }
  }
  EXPECT_TRUE(saw_miss) << "cold-cache RPC write recorded no buffer.miss span";
  EXPECT_TRUE(saw_flush_wait)
      << "auto-committed RPC write recorded no log.flush.wait span";

  // The shape assertions above only hold if nothing was overwritten: a
  // wrapped ring would silently detach children from evicted parents.
  EXPECT_EQ(world.db().metrics().spans().TotalDropped(), 0u)
      << "span ring wrapped mid-test; the tree walked above is incomplete";
  EXPECT_EQ(world.db().metrics().trace().TotalDropped(), 0u);
}

}  // namespace
}  // namespace invfs
