// Unit tests for the observability layer: counter/gauge/histogram semantics,
// registry snapshots and dumps, and the trace ring (including wrap-around).

#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace invfs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Everything huge lands in the final bucket rather than overflowing.
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, CountSumMeanAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 6u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  auto buckets = h.Buckets();
  EXPECT_EQ(buckets[0], 1u);  // the 0
  EXPECT_EQ(buckets[1], 1u);  // the 1
  EXPECT_EQ(buckets[3], 1u);  // the 5 (in [4,8))
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct metrics.
  Counter* l1 = reg.GetCounter("x", "one");
  Counter* l2 = reg.GetCounter("x", "two");
  EXPECT_NE(l1, l2);
  EXPECT_NE(a, l1);
  // Kinds live in separate namespaces keyed by (name, label).
  Gauge* g = reg.GetGauge("x");
  Histogram* h = reg.GetHistogram("x");
  EXPECT_NE(static_cast<void*>(g), static_cast<void*>(a));
  EXPECT_NE(static_cast<void*>(h), static_cast<void*>(a));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b.counter")->Add(2);
  reg.GetGauge("a.gauge")->Set(-5);
  reg.GetHistogram("c.hist")->Observe(16);
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, -5);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].value, 2);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].count, 1u);
  EXPECT_EQ(snap[2].sum, 16u);
}

TEST(MetricsRegistryTest, DumpTextAndJsonContainMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("buffer.hits")->Add(7);
  reg.GetHistogram("log.flush_us", "disk")->Observe(100);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("buffer.hits"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("log.flush_us{disk}"), std::string::npos);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"name\": \"buffer.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TraceRingTest, RecordsInOrder) {
  TraceRing ring;
  ring.Record(TraceEvent::kTxnBegin, 10);
  ring.Record(TraceEvent::kTxnCommit, 10, 2);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].event, TraceEvent::kTxnBegin);
  EXPECT_EQ(snap[0].a, 10u);
  EXPECT_EQ(snap[1].event, TraceEvent::kTxnCommit);
  EXPECT_EQ(snap[1].b, 2u);
  EXPECT_LT(snap[0].seq, snap[1].seq);
  EXPECT_EQ(ring.TotalRecorded(), 2u);
}

TEST(TraceRingTest, WrapKeepsOnlyTheNewest) {
  TraceRing ring;
  const size_t n = TraceRing::kCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    ring.Record(TraceEvent::kPageMiss, i);
  }
  auto snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), TraceRing::kCapacity);
  EXPECT_EQ(ring.TotalRecorded(), n);
  // The survivors are the newest kCapacity records, still in seq order.
  EXPECT_EQ(snap.front().a, n - TraceRing::kCapacity);
  EXPECT_EQ(snap.back().a, n - 1);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

TEST(TraceEventTest, NamesAreStable) {
  EXPECT_STREQ(TraceEventName(TraceEvent::kTxnBegin), "txn.begin");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPageMiss), "page.miss");
  EXPECT_STREQ(TraceEventName(TraceEvent::kGroupCommitFlush), "log.flush");
}

}  // namespace
}  // namespace invfs
