// Unit tests: system catalogs, transactional DDL, reopen, migration.

#include <gtest/gtest.h>

#include "src/catalog/database.h"

namespace invfs {
namespace {

Schema TwoCols() { return Schema{{"k", TypeId::kInt4}, {"v", TypeId::kText}}; }

TEST(Catalog, BootstrapSeedsCatalogsAndTypes) {
  StorageEnv env;
  auto db = Database::Open(&env);
  ASSERT_TRUE(db.ok());
  for (const char* name :
       {"pg_class", "pg_attribute", "pg_type", "pg_proc", "pg_index"}) {
    EXPECT_TRUE((*db)->catalog().GetTable(name).ok()) << name;
  }
  EXPECT_TRUE((*db)->catalog().GetType("int4").ok());
  EXPECT_TRUE((*db)->catalog().GetType("bytea").ok());
  EXPECT_FALSE((*db)->catalog().GetType("nonsense").ok());
}

TEST(Catalog, CreateTableVisibleInPgClass) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  auto table = (*db)->catalog().CreateTable(*txn, "files", TwoCols(),
                                            kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  auto reader = (*db)->Begin();
  bool found = false;
  auto it = (*db)->catalog().pg_class()->Scan((*db)->SnapshotFor(*reader));
  while (it.Next()) {
    if (it.row()[0].AsText() == "files") {
      found = true;
      EXPECT_EQ(it.row()[1].AsOid(), (*table)->oid);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE((*db)->Commit(*reader).ok());
}

TEST(Catalog, DuplicateTableRejected) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  ASSERT_TRUE((*db)->catalog().CreateTable(*txn, "t", TwoCols(), 0).ok());
  EXPECT_EQ((*db)->catalog().CreateTable(*txn, "t", TwoCols(), 0).status().code(),
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

TEST(Catalog, AbortedCreateLeavesNoTrace) {
  StorageEnv env;
  auto db = Database::Open(&env);
  Oid oid;
  {
    auto txn = (*db)->Begin();
    auto table = (*db)->catalog().CreateTable(*txn, "ghost", TwoCols(), 0);
    ASSERT_TRUE(table.ok());
    oid = (*table)->oid;
    ASSERT_TRUE((*db)->Abort(*txn).ok());
  }
  EXPECT_FALSE((*db)->catalog().GetTable("ghost").ok());
  EXPECT_FALSE((*db)->catalog().GetTableByOid(oid).ok());
  EXPECT_FALSE((*db)->devices().ManagerFor(oid).ok());
  // The name is reusable immediately.
  auto txn = (*db)->Begin();
  EXPECT_TRUE((*db)->catalog().CreateTable(*txn, "ghost", TwoCols(), 0).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

TEST(Catalog, DropIsDeferredToCommit) {
  StorageEnv env;
  auto db = Database::Open(&env);
  Oid oid;
  {
    auto txn = (*db)->Begin();
    auto table = (*db)->catalog().CreateTable(*txn, "t", TwoCols(), 0);
    ASSERT_TRUE(table.ok());
    oid = (*table)->oid;
    ASSERT_TRUE((*db)->InsertRow(*txn, *table, {Value::Int4(1), Value::Text("x")}).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE((*db)->catalog().DropTable(*txn, "t").ok());
    EXPECT_FALSE((*db)->catalog().GetTable("t").ok());
    // Physical storage is still there until commit...
    EXPECT_TRUE((*db)->devices().ManagerFor(oid).ok());
    ASSERT_TRUE((*db)->Abort(*txn).ok());
    // ...and an abort restores the name.
    EXPECT_TRUE((*db)->catalog().GetTable("t").ok());
  }
  {
    auto txn = (*db)->Begin();
    ASSERT_TRUE((*db)->catalog().DropTable(*txn, "t").ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
    EXPECT_FALSE((*db)->catalog().GetTable("t").ok());
    EXPECT_FALSE((*db)->devices().ManagerFor(oid).ok()) << "storage destroyed";
  }
}

TEST(Catalog, ReopenRestoresTablesIndexesTypesProcs) {
  StorageEnv env;
  Oid table_oid, index_oid;
  {
    auto db = Database::Open(&env);
    auto txn = (*db)->Begin();
    auto table = (*db)->catalog().CreateTable(*txn, "persist", TwoCols(), 0);
    ASSERT_TRUE(table.ok());
    table_oid = (*table)->oid;
    auto index = (*db)->catalog().CreateIndex(*txn, *table, {0});
    ASSERT_TRUE(index.ok());
    index_oid = (*index)->oid;
    ASSERT_TRUE((*db)->catalog().DefineType(*txn, "movie").ok());
    ASSERT_TRUE((*db)
                    ->catalog()
                    .DefineFunction(*txn, "plus1", TypeId::kInt8, 1,
                                    ProcLang::kPostquel, "$1 + 1")
                    .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*db)->InsertRow(*txn, *table, {Value::Int4(i), Value::Text("r")}).ok());
    }
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  {
    auto db = Database::Open(&env);
    auto table = (*db)->catalog().GetTable("persist");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->oid, table_oid);
    EXPECT_EQ((*table)->schema.num_columns(), 2u);
    ASSERT_EQ((*table)->indexes.size(), 1u);
    EXPECT_EQ((*table)->indexes[0]->oid, index_oid);
    EXPECT_EQ((*table)->indexes[0]->key_columns, std::vector<size_t>{0});
    // Index is usable after reopen.
    auto tids = (*table)->indexes[0]->btree->Lookup(EncodeInt4Key(7));
    ASSERT_TRUE(tids.ok());
    EXPECT_EQ(tids->size(), 1u);
    EXPECT_TRUE((*db)->catalog().GetType("movie").ok());
    auto proc = (*db)->catalog().GetFunction("plus1");
    ASSERT_TRUE(proc.ok());
    EXPECT_EQ((*proc)->src, "$1 + 1");
    // Fresh oids never collide with recovered ones.
    EXPECT_GT((*db)->catalog().AllocateOid(), index_oid);
  }
}

TEST(Catalog, IndexBackfillsExistingRows) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  auto table = (*db)->catalog().CreateTable(*txn, "t", TwoCols(), 0);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*db)->InsertRow(*txn, *table, {Value::Int4(i), Value::Text("x")}).ok());
  }
  auto index = (*db)->catalog().CreateIndex(*txn, *table, {0});
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
  EXPECT_EQ(*(*index)->btree->CountEntries(), 100u);
}

TEST(Catalog, MigrateTableMovesDataBetweenDevices) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  auto table = (*db)->catalog().CreateTable(*txn, "mover", TwoCols(),
                                            kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        (*db)->InsertRow(*txn, *table, {Value::Int4(i), Value::Text("data")}).ok());
  }
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  auto txn2 = (*db)->Begin();
  ASSERT_TRUE((*db)->catalog().MigrateTable(*txn2, *table, kDeviceNvram).ok());
  ASSERT_TRUE((*db)->Commit(*txn2).ok());

  EXPECT_EQ(*(*db)->devices().DeviceFor((*table)->oid), kDeviceNvram);
  auto reader = (*db)->Begin();
  int count = 0;
  auto it = (*table)->heap->Scan((*db)->SnapshotFor(*reader));
  while (it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 40);
  ASSERT_TRUE((*db)->Commit(*reader).ok());
}

TEST(Catalog, HistoricalNameResolution) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto t1 = (*db)->Begin();
  auto table = (*db)->catalog().CreateTable(*t1, "young", TwoCols(), 0);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*db)->Commit(*t1).ok());
  const Timestamp before_drop = (*db)->Now();
  // GetTableAt resolves names through pg_class under the snapshot.
  auto at = (*db)->catalog().GetTableAt("young", (*db)->SnapshotAt(before_drop));
  ASSERT_TRUE(at.ok());
  EXPECT_EQ((*at)->oid, (*table)->oid);
  auto too_early = (*db)->catalog().GetTableAt("young", (*db)->SnapshotAt(1));
  EXPECT_FALSE(too_early.ok());
}

TEST(Catalog, DefineDuplicateTypeOrFunctionRejected) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  ASSERT_TRUE((*db)->catalog().DefineType(*txn, "tm").ok());
  EXPECT_EQ((*db)->catalog().DefineType(*txn, "tm").status().code(),
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE((*db)
                  ->catalog()
                  .DefineFunction(*txn, "f", TypeId::kInt4, 1, ProcLang::kPostquel, "$1")
                  .ok());
  EXPECT_FALSE((*db)
                   ->catalog()
                   .DefineFunction(*txn, "f", TypeId::kInt4, 1, ProcLang::kPostquel,
                                   "$1")
                   .ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
}

}  // namespace
}  // namespace invfs
