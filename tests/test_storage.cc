// Unit tests: typed values, slotted pages, tuple encoding, chunk geometry.

#include <gtest/gtest.h>

#include <vector>

#include "src/inversion/inv_fs.h"
#include "src/storage/page.h"
#include "src/storage/tuple.h"
#include "src/util/bytes.h"
#include "src/storage/value.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- Value

TEST(Value, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.HasType(TypeId::kInt4));
  EXPECT_EQ(v.ToString(), "null");
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value::Int4(1).HasType(TypeId::kInt4));
  EXPECT_FALSE(Value::Int4(1).HasType(TypeId::kInt8));
  EXPECT_TRUE(Value::MakeOid(1).HasType(TypeId::kOid));
  EXPECT_TRUE(Value::MakeTimestamp(1).HasType(TypeId::kTimestamp));
  EXPECT_TRUE(Value::Text("x").HasType(TypeId::kText));
  EXPECT_TRUE(Value::Bytes({}).HasType(TypeId::kBytea));
}

TEST(Value, NumericWidening) {
  EXPECT_EQ(*Value::Int4(-5).ToInt64(), -5);
  EXPECT_EQ(*Value::MakeOid(7).ToInt64(), 7);
  EXPECT_DOUBLE_EQ(*Value::Int8(3).ToDouble(), 3.0);
  EXPECT_FALSE(Value::Text("x").ToInt64().ok());
}

TEST(Value, CompareSameType) {
  EXPECT_LT(Value::Int4(1).Compare(Value::Int4(2)), 0);
  EXPECT_EQ(Value::Text("abc").Compare(Value::Text("abc")), 0);
  EXPECT_GT(Value::Float8(2.5).Compare(Value::Float8(-1)), 0);
}

TEST(Value, CompareCrossNumeric) {
  EXPECT_EQ(Value::Int4(7).Compare(Value::Int8(7)), 0);
  EXPECT_LT(Value::Int4(7).Compare(Value::Float8(7.5)), 0);
  EXPECT_GT(Value::Int8(1'000'000'000'000).Compare(Value::Int4(5)), 0);
}

TEST(Value, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int4(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, BlobCompareIsLexicographic) {
  Blob a{std::byte{1}, std::byte{2}};
  Blob b{std::byte{1}, std::byte{2}, std::byte{0}};
  EXPECT_LT(Value::Bytes(a).Compare(Value::Bytes(b)), 0);
}

TEST(TypeNames, RoundtripAndPaperAliases) {
  for (TypeId t : {TypeId::kBool, TypeId::kInt4, TypeId::kInt8, TypeId::kFloat8,
                   TypeId::kText, TypeId::kBytea, TypeId::kOid, TypeId::kTimestamp}) {
    auto back = TypeFromName(TypeName(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  // The paper's schema spellings.
  EXPECT_EQ(*TypeFromName("object_id"), TypeId::kOid);
  EXPECT_EQ(*TypeFromName("longlong"), TypeId::kInt8);
  EXPECT_EQ(*TypeFromName("time"), TypeId::kTimestamp);
  EXPECT_FALSE(TypeFromName("varchar").ok());
}

TEST(Schema, ColumnIndex) {
  Schema s{{"a", TypeId::kInt4}, {"b", TypeId::kText}};
  EXPECT_EQ(*s.ColumnIndex("b"), 1u);
  EXPECT_FALSE(s.ColumnIndex("c").ok());
}

// ---------------------------------------------------------------- Page

class PageTest : public ::testing::Test {
 protected:
  PageTest() : page_(frame_) { page_.Init(/*rel=*/42, /*block=*/7); }
  std::byte frame_[kPageSize] = {};
  Page page_;
};

TEST_F(PageTest, InitializedAndSelfIdentified) {
  EXPECT_TRUE(page_.IsInitialized());
  EXPECT_TRUE(page_.VerifySelfIdent(42, 7).ok());
  EXPECT_FALSE(page_.VerifySelfIdent(42, 8).ok());
  EXPECT_FALSE(page_.VerifySelfIdent(43, 7).ok());
}

TEST_F(PageTest, AddAndGetTuples) {
  std::vector<std::byte> t1(100, std::byte{0xAA});
  std::vector<std::byte> t2(50, std::byte{0xBB});
  ASSERT_EQ(*page_.AddTuple(t1), 0);
  ASSERT_EQ(*page_.AddTuple(t2), 1);
  EXPECT_EQ(page_.num_slots(), 2);
  auto got = page_.GetTuple(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 100u);
  EXPECT_EQ((*got)[0], std::byte{0xAA});
}

TEST_F(PageTest, FillsUntilExactCapacity) {
  // One max-size tuple must fit exactly (the chunk-geometry invariant).
  std::vector<std::byte> big(kPageSize - kPageHeaderSize - kLinePointerSize,
                             std::byte{1});
  ASSERT_TRUE(page_.AddTuple(big).ok());
  EXPECT_EQ(page_.FreeSpace(), 0u);
  std::vector<std::byte> one(1, std::byte{2});
  EXPECT_EQ(page_.AddTuple(one).status().code(), ErrorCode::kResourceExhausted);
}

TEST_F(PageTest, ManySmallTuples) {
  std::vector<std::byte> t(20, std::byte{3});
  int added = 0;
  while (page_.AddTuple(t).ok()) {
    ++added;
  }
  // 8168 usable / 24 per tuple-with-pointer = 340.
  EXPECT_EQ(added, 340);
  EXPECT_EQ(page_.num_slots(), added);
}

TEST_F(PageTest, KillSlotAndCompactPreservesSurvivors) {
  std::vector<std::byte> a(100, std::byte{0xA1});
  std::vector<std::byte> b(100, std::byte{0xB2});
  std::vector<std::byte> c(100, std::byte{0xC3});
  ASSERT_TRUE(page_.AddTuple(a).ok());
  ASSERT_TRUE(page_.AddTuple(b).ok());
  ASSERT_TRUE(page_.AddTuple(c).ok());
  const uint32_t before = page_.FreeSpace();
  ASSERT_TRUE(page_.KillSlot(1).ok());
  EXPECT_TRUE(page_.GetTuple(1)->empty());
  page_.Compact();
  // Slot numbers stable; dead slot remains dead; space reclaimed.
  EXPECT_GT(page_.FreeSpace(), before + 99);
  EXPECT_EQ((*page_.GetTuple(0))[0], std::byte{0xA1});
  EXPECT_TRUE(page_.GetTuple(1)->empty());
  EXPECT_EQ((*page_.GetTuple(2))[0], std::byte{0xC3});
}

TEST_F(PageTest, SlotOutOfRange) {
  EXPECT_FALSE(page_.GetTuple(0).ok());
  EXPECT_FALSE(page_.KillSlot(3).ok());
}

// ---------------------------------------------------------------- Tuple

Schema WideSchema() {
  return Schema{{"b", TypeId::kBool},     {"i4", TypeId::kInt4},
                {"i8", TypeId::kInt8},    {"f8", TypeId::kFloat8},
                {"t", TypeId::kText},     {"blob", TypeId::kBytea},
                {"oid", TypeId::kOid},    {"ts", TypeId::kTimestamp}};
}

Row WideRow() {
  return Row{Value::Bool(true),
             Value::Int4(-7),
             Value::Int8(1ll << 40),
             Value::Float8(2.5),
             Value::Text("hello world"),
             Value::Bytes(Blob{std::byte{9}, std::byte{8}}),
             Value::MakeOid(23114),
             Value::MakeTimestamp(777)};
}

TEST(Tuple, RoundtripAllTypes) {
  const Schema schema = WideSchema();
  const Row row = WideRow();
  auto encoded = EncodeTuple(schema, row, TupleMeta{5, 10, 0});
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeTuple(schema, *encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i].Compare((*decoded)[i]), 0) << "column " << i;
  }
}

TEST(Tuple, MetaRoundtripAndXmaxUpdate) {
  const Schema schema = WideSchema();
  auto encoded = EncodeTuple(schema, WideRow(), TupleMeta{23114, 42, 0});
  ASSERT_TRUE(encoded.ok());
  TupleMeta m = GetTupleMeta(*encoded);
  EXPECT_EQ(m.oid, 23114u);
  EXPECT_EQ(m.xmin, 42u);
  EXPECT_EQ(m.xmax, kInvalidTxn);
  SetTupleXmax(*encoded, 99);
  EXPECT_EQ(GetTupleMeta(*encoded).xmax, 99u);
  // Data untouched by the in-place xmax stamp.
  auto decoded = DecodeTuple(schema, *encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[4].AsText(), "hello world");
}

TEST(Tuple, NullsEncodeToNoBytes) {
  const Schema schema = WideSchema();
  Row nulls(schema.num_columns(), Value::Null());
  auto encoded = EncodeTuple(schema, nulls, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), kTupleFixedHeader + 1);  // header + bitmap only
  auto decoded = DecodeTuple(schema, *encoded);
  ASSERT_TRUE(decoded.ok());
  for (const Value& v : *decoded) {
    EXPECT_TRUE(v.is_null());
  }
}

TEST(Tuple, MixedNullsRoundtrip) {
  const Schema schema = WideSchema();
  Row row = WideRow();
  row[1] = Value::Null();
  row[4] = Value::Null();
  auto encoded = EncodeTuple(schema, row, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeTuple(schema, *encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[1].is_null());
  EXPECT_TRUE((*decoded)[4].is_null());
  EXPECT_EQ((*decoded)[6].AsOid(), 23114u);
}

TEST(Tuple, DecodeColumnSkipsSiblings) {
  const Schema schema = WideSchema();
  auto encoded = EncodeTuple(schema, WideRow(), TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  auto v = DecodeColumn(schema, *encoded, 6);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsOid(), 23114u);
  EXPECT_FALSE(DecodeColumn(schema, *encoded, 99).ok());
}

TEST(Tuple, ArityMismatchRejected) {
  const Schema schema = WideSchema();
  Row short_row{Value::Bool(true)};
  EXPECT_FALSE(EncodeTuple(schema, short_row, TupleMeta{}).ok());
}

TEST(Tuple, TypeMismatchRejected) {
  Schema schema{{"a", TypeId::kInt4}};
  Row row{Value::Text("not an int")};
  EXPECT_FALSE(EncodeTuple(schema, row, TupleMeta{}).ok());
}

TEST(Tuple, CorruptTupleDetected) {
  const Schema schema = WideSchema();
  auto encoded = EncodeTuple(schema, WideRow(), TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  encoded->resize(encoded->size() / 2);  // truncate
  EXPECT_FALSE(DecodeTuple(schema, *encoded).ok());
}

TEST(Tuple, HugeVarlenaLengthRejected) {
  // Regression: a corrupted varlena header near UINT32_MAX must not wrap the
  // "4 + len" bounds arithmetic and decode bytes past the buffer.
  const Schema schema{{"t", TypeId::kText}};
  auto encoded = EncodeTuple(schema, {Value::Text("hello")}, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  // Layout: 14-byte header, 1 bitmap byte, then the u32 text length.
  PutU32(encoded->data() + kTupleFixedHeader + 1, 0xFFFFFFFFu);
  EXPECT_FALSE(DecodeTuple(schema, *encoded).ok());
  PutU32(encoded->data() + kTupleFixedHeader + 1, 0xFFFFFFFBu);  // 4 + len == 2^32 - 1
  EXPECT_FALSE(DecodeTuple(schema, *encoded).ok());
}

TEST(Tuple, VarlenaHeaderPastEndRejected) {
  const Schema schema{{"t", TypeId::kText}};
  auto encoded = EncodeTuple(schema, {Value::Text("hello")}, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  // Cut inside the u32 length header itself.
  encoded->resize(kTupleFixedHeader + 1 + 2);
  EXPECT_FALSE(DecodeTuple(schema, *encoded).ok());
}

TEST(Tuple, TruncatedFixedColumnRejected) {
  const Schema schema{{"n", TypeId::kInt8}};
  auto encoded = EncodeTuple(schema, {Value::Int8(7)}, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  encoded->resize(encoded->size() - 3);  // cut into the int8 payload
  EXPECT_FALSE(DecodeTuple(schema, *encoded).ok());
}

TEST(Tuple, SizePredictionMatches) {
  const Schema schema = WideSchema();
  const Row row = WideRow();
  auto size = EncodedTupleSize(schema, row);
  auto encoded = EncodeTuple(schema, row, TupleMeta{});
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*size, encoded->size());
}

// ------------------------------------------------------- chunk geometry

TEST(ChunkGeometry, FullChunkRecordExactlyFillsOnePage) {
  // "The size of the chunk is calculated so that a single record will fit
  // exactly on a POSTGRES data manager page."
  Schema chunk_schema{{"chunkno", TypeId::kInt4},
                      {"data", TypeId::kBytea},
                      {"selfid", TypeId::kInt8},
                      {"rawlen", TypeId::kInt4}};
  Row row{Value::Int4(0), Value::Bytes(Blob(kInvChunkSize, std::byte{0x11})),
          Value::Int8(1), Value::Null()};
  auto encoded = EncodeTuple(chunk_schema, row, TupleMeta{});
  ASSERT_TRUE(encoded.ok());
  std::byte frame[kPageSize];
  Page page(frame);
  page.Init(1, 0);
  ASSERT_TRUE(page.AddTuple(*encoded).ok());
  EXPECT_EQ(page.FreeSpace(), 0u) << "chunk record should exactly fill the page";
  // And one byte more would not fit.
  row[1] = Value::Bytes(Blob(kInvChunkSize + 1, std::byte{0x11}));
  auto bigger = EncodeTuple(chunk_schema, row, TupleMeta{});
  ASSERT_TRUE(bigger.ok());
  Page page2(frame);
  page2.Init(1, 0);
  EXPECT_FALSE(page2.AddTuple(*bigger).ok());
}

}  // namespace
}  // namespace invfs
