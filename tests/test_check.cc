// invfs_check: the offline structural verifier. A clean workload must verify
// clean; each deliberate corruption must be reported under the specific
// invariant it breaks.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "src/access/btree_layout.h"
#include "src/check/checker.h"
#include "src/inversion/inv_fs.h"
#include "src/storage/page.h"
#include "src/util/bytes.h"

namespace invfs {
namespace {

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  void MakeFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  // Overwrite an existing file, superseding its fileatt version.
  void OverwriteFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_open(path, OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  // Flush the live database to stable storage and verify the image.
  CheckReport Check() {
    EXPECT_TRUE(db_->FlushCaches().ok());
    auto report = CheckImage(env_);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : CheckReport{};
  }

  Oid ChunkTableOid(const std::string& path) {
    const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
    auto oid = fs_->ResolvePath(path, snap);
    EXPECT_TRUE(oid.ok());
    auto table = db_->catalog().GetTable("inv" + std::to_string(*oid));
    EXPECT_TRUE(table.ok());
    return (*table)->oid;
  }

  // Corruption helper: mutate one stored page, then re-stamp its CRC so
  // deeper invariants (not the checksum) are what the checker trips on.
  void MutateAndRestamp(Oid rel, uint32_t block,
                        const std::function<void(std::byte*)>& mutate) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(env_.disk_store->Read(rel, block, buf).ok());
    mutate(buf.data());
    Page(buf.data()).UpdateChecksum();
    ASSERT_TRUE(env_.disk_store->Write(rel, block, buf).ok());
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

TEST_F(CheckTest, CleanImageAfterFileWorkload) {
  MakeFile("/a.txt", std::string(500, 'a'));
  MakeFile("/b.txt", std::string(20000, 'b'));  // multi-chunk
  ASSERT_TRUE(s_->mkdir("/sub").ok());
  MakeFile("/sub/c.txt", "nested");
  OverwriteFile("/a.txt", "overwritten");  // second version of fileatt row
  ASSERT_TRUE(s_->unlink("/b.txt").ok());

  const CheckReport report = Check();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.relations_checked, 5u);
  EXPECT_GT(report.pages_checked, 0u);
  EXPECT_GT(report.tuples_checked, 0u);
  EXPECT_GT(report.index_entries_checked, 0u);
}

TEST_F(CheckTest, CrashedInFlightTransactionLeavesCleanImage) {
  MakeFile("/durable.txt", "committed");
  // An uncommitted transaction whose pages reach stable storage before the
  // crash: the commit log makes its tuples dead, not the image corrupt.
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/inflight.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data(3000, 'x');
  ASSERT_TRUE(
      s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(db_->buffers().FlushAll().ok());

  s_.reset();
  fs_.reset();
  db_->Crash();
  db_.reset();

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();

  // Recovery (= reopening) changes nothing about that verdict.
  auto db = Database::Open(&env_);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  const CheckReport after = Check();
  EXPECT_TRUE(after.ok()) << after.ToString();
}

TEST_F(CheckTest, FlippedByteYieldsChecksumViolation) {
  MakeFile("/victim.txt", std::string(2000, 'v'));
  ASSERT_TRUE(db_->FlushCaches().ok());
  const Oid chunks = ChunkTableOid("/victim.txt");
  auto* store = static_cast<MemBlockStore*>(env_.disk_store.get());
  ASSERT_TRUE(store->CorruptByte(chunks, 0, kPageSize - 50).ok());

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has("page-checksum")) << report->ToString();
}

TEST_F(CheckTest, CutVersionChainYieldsDuplicateCurrent) {
  MakeFile("/v.txt", "one");
  OverwriteFile("/v.txt", "two");  // supersedes: old fileatt version gets an xmax
  ASSERT_TRUE(db_->FlushCaches().ok());

  auto fileatt = db_->catalog().GetTable("fileatt");
  ASSERT_TRUE(fileatt.ok());
  const Oid rel = (*fileatt)->oid;
  auto nblocks = env_.disk_store->NumBlocks(rel);
  ASSERT_TRUE(nblocks.ok());
  // Cut the version chain: find a superseded version and clear its xmax, so
  // two committed versions of the same file are simultaneously current.
  bool cut = false;
  for (uint32_t b = 0; b < *nblocks && !cut; ++b) {
    MutateAndRestamp(rel, b, [&](std::byte* frame) {
      const uint16_t nslots = GetU16(frame + 2);
      for (uint16_t slot = 0; slot < nslots; ++slot) {
        const std::byte* lp = frame + kPageHeaderSize + slot * kLinePointerSize;
        const uint16_t off = GetU16(lp);
        const uint16_t len = GetU16(lp + 2);
        if (len < kTupleFixedHeader || GetU32(frame + off + 8) == kInvalidTxn) {
          continue;
        }
        PutU32(frame + off + 8, kInvalidTxn);  // xmax := never deleted
        cut = true;
        return;
      }
    });
  }
  ASSERT_TRUE(cut) << "no superseded fileatt version found";

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has("duplicate-current-version")) << report->ToString();
}

TEST_F(CheckTest, OutOfOrderBtreeKeyDetected) {
  for (int i = 0; i < 20; ++i) {
    MakeFile("/f" + std::to_string(100 + i), "x");
  }
  ASSERT_TRUE(db_->FlushCaches().ok());

  auto naming = db_->catalog().GetTable("naming");
  ASSERT_TRUE(naming.ok());
  ASSERT_FALSE((*naming)->indexes.empty());
  const Oid index = (*naming)->indexes[0]->oid;
  auto nblocks = env_.disk_store->NumBlocks(index);
  ASSERT_TRUE(nblocks.ok());

  namespace bl = btree_layout;
  bool swapped = false;
  for (uint32_t b = 1; b < *nblocks && !swapped; ++b) {
    MutateAndRestamp(index, b, [&](std::byte* frame) {
      if (static_cast<uint8_t>(frame[bl::kOffType]) != bl::kNodeLeaf ||
          GetU16(frame + bl::kOffNKeys) < 2) {
        return;
      }
      // First two entries: u16 klen + key + 6-byte TID payload each. Swap the
      // first differing key byte (outside the TID suffix) between them, which
      // inverts their memcmp order.
      std::byte* e0 = frame + bl::kOffEntries;
      const uint16_t k0len = GetU16(e0);
      std::byte* k0 = e0 + 2;
      std::byte* e1 = e0 + 2 + k0len + 6;
      const uint16_t k1len = GetU16(e1);
      std::byte* k1 = e1 + 2;
      const size_t common = std::min(k0len, k1len) - bl::kTidSuffix;
      for (size_t p = 0; p < common; ++p) {
        if (k0[p] != k1[p]) {
          std::swap(k0[p], k1[p]);
          swapped = true;
          return;
        }
      }
    });
  }
  ASSERT_TRUE(swapped) << "no leaf with two distinguishable keys found";

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has("btree-key-order")) << report->ToString();
}

TEST_F(CheckTest, OrphanChunkTableDetected) {
  // A chunk table whose file oid no fileatt version references: unreachable
  // storage that a lost delete (or botched vacuum) would leave behind.
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  const Schema chunk_schema{{"chunkno", TypeId::kInt4},
                            {"data", TypeId::kBytea},
                            {"selfid", TypeId::kInt8},
                            {"rawlen", TypeId::kInt4}};
  auto table = db_->catalog().CreateTable(*txn, "inv77777", chunk_schema,
                                          kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  const CheckReport report = Check();
  EXPECT_TRUE(report.Has("orphan-chunk-table")) << report.ToString();
}

TEST_F(CheckTest, MissingRelationDetected) {
  MakeFile("/gone.txt", "data");
  ASSERT_TRUE(db_->FlushCaches().ok());
  const Oid chunks = ChunkTableOid("/gone.txt");
  ASSERT_TRUE(env_.disk_store->Drop(chunks).ok());

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has("relation-missing")) << report->ToString();
}

TEST_F(CheckTest, UnreferencedRelationDetected) {
  MakeFile("/any.txt", "data");
  ASSERT_TRUE(db_->FlushCaches().ok());
  ASSERT_TRUE(env_.disk_store->Create(4242).ok());

  auto report = CheckImage(env_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has("relation-unreferenced")) << report->ToString();
}

TEST_F(CheckTest, ChunkSelfIdentMismatchDetected) {
  MakeFile("/w.txt", std::string(1000, 'w'));
  ASSERT_TRUE(db_->FlushCaches().ok());
  const Oid chunks = ChunkTableOid("/w.txt");

  // Rewrite the selfid of the first chunk record to a wrong value. The first
  // tuple sits at the very end of the page and selfid is its last (or
  // second-to-last, when rawlen is stored) column; rather than chase the exact
  // offset, flip each candidate byte of the tuple tail until the record-level
  // check (not the page CRC, which we re-stamp) fires.
  bool hit = false;
  for (uint32_t off = kPageSize - 1; off > kPageSize - 24 && !hit; --off) {
    MutateAndRestamp(chunks, 0, [&](std::byte* frame) { frame[off] ^= std::byte{0xFF}; });
    auto report = CheckImage(env_);
    ASSERT_TRUE(report.ok());
    if (report->Has("chunk-self-ident")) {
      hit = true;
    } else {
      MutateAndRestamp(chunks, 0,
                       [&](std::byte* frame) { frame[off] ^= std::byte{0xFF}; });
    }
  }
  EXPECT_TRUE(hit) << "no byte in the tuple tail tripped the selfid check";
}

}  // namespace
}  // namespace invfs
