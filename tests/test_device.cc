// Unit tests: block stores, device managers, the device switch, and the
// simulated cost models behind them.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/buffer/buffer_pool.h"
#include "src/device/block_store.h"
#include "src/device/device.h"
#include "src/sim/disk_model.h"

namespace invfs {
namespace {

std::vector<std::byte> PageOf(uint8_t fill) {
  return std::vector<std::byte>(kPageSize, std::byte{fill});
}

// ----------------------------------------------------------- MemBlockStore

TEST(MemBlockStore, CreateWriteReadDrop) {
  MemBlockStore store;
  ASSERT_TRUE(store.Create(5).ok());
  EXPECT_TRUE(store.Exists(5));
  EXPECT_EQ(*store.NumBlocks(5), 0u);
  ASSERT_TRUE(store.Write(5, 0, PageOf(0xAB)).ok());
  EXPECT_EQ(*store.NumBlocks(5), 1u);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(store.Read(5, 0, out).ok());
  EXPECT_EQ(out[100], std::byte{0xAB});
  ASSERT_TRUE(store.Drop(5).ok());
  EXPECT_FALSE(store.Exists(5));
}

TEST(MemBlockStore, RejectsDoubleCreateAndMissing) {
  MemBlockStore store;
  ASSERT_TRUE(store.Create(1).ok());
  EXPECT_EQ(store.Create(1).code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(store.Drop(2).IsNotFound());
  std::vector<std::byte> out(kPageSize);
  EXPECT_TRUE(store.Read(2, 0, out).IsNotFound());
}

TEST(MemBlockStore, RejectsHolesAndShortWrites) {
  MemBlockStore store;
  ASSERT_TRUE(store.Create(1).ok());
  EXPECT_FALSE(store.Write(1, 5, PageOf(1)).ok());  // hole
  std::vector<std::byte> small(10);
  EXPECT_FALSE(store.Write(1, 0, small).ok());
}

TEST(MemBlockStore, OverwriteInPlace) {
  MemBlockStore store;
  ASSERT_TRUE(store.Create(1).ok());
  ASSERT_TRUE(store.Write(1, 0, PageOf(0x11)).ok());
  ASSERT_TRUE(store.Write(1, 0, PageOf(0x22)).ok());
  EXPECT_EQ(*store.NumBlocks(1), 1u);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(store.Read(1, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0x22});
}

TEST(MemBlockStore, ListRelations) {
  MemBlockStore store;
  ASSERT_TRUE(store.Create(3).ok());
  ASSERT_TRUE(store.Create(9).ok());
  auto rels = store.ListRelations();
  EXPECT_EQ(rels.size(), 2u);
}

// ---------------------------------------------------------- FileBlockStore

TEST(FileBlockStore, PersistsAcrossReopen) {
  char tmpl[] = "/tmp/invfs_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    auto store = FileBlockStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Create(7).ok());
    ASSERT_TRUE((*store)->Write(7, 0, PageOf(0x7A)).ok());
    ASSERT_TRUE((*store)->Write(7, 1, PageOf(0x7B)).ok());
  }
  {
    auto store = FileBlockStore::Open(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->Exists(7));
    EXPECT_EQ(*(*store)->NumBlocks(7), 2u);
    std::vector<std::byte> out(kPageSize);
    ASSERT_TRUE((*store)->Read(7, 1, out).ok());
    EXPECT_EQ(out[0], std::byte{0x7B});
    auto rels = (*store)->ListRelations();
    ASSERT_EQ(rels.size(), 1u);
    EXPECT_EQ(rels[0], 7u);
    ASSERT_TRUE((*store)->Drop(7).ok());
    EXPECT_FALSE((*store)->Exists(7));
  }
}

// -------------------------------------------------------------- DiskModel

TEST(DiskModel, SequentialCheaperThanRandom) {
  SimClock clock;
  DiskModel disk(&clock, DiskParams{});
  disk.ChargePageIo(100);
  const SimMicros t0 = clock.Peek();
  for (uint64_t b = 101; b < 151; ++b) {
    disk.ChargePageIo(b);
  }
  const SimMicros sequential = clock.Peek() - t0;
  const SimMicros t1 = clock.Peek();
  for (uint64_t b = 0; b < 50; ++b) {
    disk.ChargePageIo(b * 997 % 100000);
  }
  const SimMicros random = clock.Peek() - t1;
  EXPECT_GT(random, sequential * 3);
  EXPECT_EQ(disk.total_ios(), 101u);
}

TEST(DiskModel, SyncWriteCostsAtLeastOneRevolution) {
  SimClock clock;
  DiskParams params;
  DiskModel disk(&clock, params);
  disk.ChargePageIo(10);
  const SimMicros t0 = clock.Peek();
  disk.ChargeSyncPageIo(11);  // sequential, but sync
  EXPECT_GE(clock.Peek() - t0, params.page_transfer_us + 2 * params.rotational_us);
}

// -------------------------------------------------------- MagneticDiskDevice

TEST(MagneticDiskDevice, StoresDataAndChargesTime) {
  SimClock clock;
  MemBlockStore store;
  MagneticDiskDevice dev(&store, &clock, DiskParams{});
  ASSERT_TRUE(dev.CreateRelation(1).ok());
  const SimMicros t0 = clock.Peek();
  ASSERT_TRUE(dev.WriteBlock(1, 0, PageOf(0x55)).ok());
  EXPECT_GT(clock.Peek(), t0);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev.ReadBlock(1, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0x55});
}

TEST(MagneticDiskDevice, SeparateRelationsOccupySeparateRegions) {
  // Alternating writes to two relations must seek; a single relation streams.
  SimClock clock;
  MemBlockStore store;
  MagneticDiskDevice dev(&store, &clock, DiskParams{}, /*extent_pages=*/4);
  ASSERT_TRUE(dev.CreateRelation(1).ok());
  ASSERT_TRUE(dev.CreateRelation(2).ok());
  // Allocate both relations' space first.
  for (uint32_t b = 0; b < 16; ++b) {
    ASSERT_TRUE(dev.WriteBlock(1, b, PageOf(1)).ok());
  }
  for (uint32_t b = 0; b < 16; ++b) {
    ASSERT_TRUE(dev.WriteBlock(2, b, PageOf(2)).ok());
  }
  std::vector<std::byte> out(kPageSize);
  const SimMicros t0 = clock.Peek();
  for (uint32_t b = 0; b < 16; ++b) {
    ASSERT_TRUE(dev.ReadBlock(1, b, out).ok());
  }
  const SimMicros single = clock.Peek() - t0;
  const SimMicros t1 = clock.Peek();
  for (uint32_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(dev.ReadBlock(1, b, out).ok());
    ASSERT_TRUE(dev.ReadBlock(2, b, out).ok());
  }
  const SimMicros interleaved = clock.Peek() - t1;
  EXPECT_GT(interleaved, single);
}

// ------------------------------------------------------------ JukeboxDevice

class JukeboxTest : public ::testing::Test {
 protected:
  JukeboxTest() : dev_(&store_, &clock_, JukeboxParams{}, DiskParams{}) {}
  SimClock clock_;
  MemBlockStore store_;
  JukeboxDevice dev_;
};

TEST_F(JukeboxTest, WritesLandInStagingCache) {
  ASSERT_TRUE(dev_.CreateRelation(1).ok());
  ASSERT_TRUE(dev_.WriteBlock(1, 0, PageOf(0x31)).ok());
  EXPECT_EQ(dev_.platter_loads(), 0u) << "write should be absorbed by the cache";
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_.ReadBlock(1, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0x31});
  EXPECT_GE(dev_.cache_hits(), 1u);
}

TEST_F(JukeboxTest, ColdReadLoadsPlatter) {
  ASSERT_TRUE(dev_.CreateRelation(1).ok());
  ASSERT_TRUE(dev_.WriteBlock(1, 0, PageOf(1)).ok());
  ASSERT_TRUE(dev_.DropStagingCache().ok());  // destage may itself load once
  const uint64_t base_loads = dev_.platter_loads();
  const SimMicros t0 = clock_.Peek();
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_.ReadBlock(1, 0, out).ok());
  EXPECT_EQ(dev_.platter_loads(), base_loads + 1);
  EXPECT_GE(clock_.Peek() - t0, JukeboxParams{}.platter_load_us);
  // Second read: staged, no further platter traffic.
  const SimMicros t1 = clock_.Peek();
  ASSERT_TRUE(dev_.ReadBlock(1, 0, out).ok());
  EXPECT_EQ(dev_.platter_loads(), base_loads + 1);
  EXPECT_LT(clock_.Peek() - t1, JukeboxParams{}.platter_load_us / 10);
}

TEST_F(JukeboxTest, WormRewriteCountsRemap) {
  ASSERT_TRUE(dev_.CreateRelation(1).ok());
  ASSERT_TRUE(dev_.WriteBlock(1, 0, PageOf(1)).ok());
  ASSERT_TRUE(dev_.Sync().ok());  // first destage: the block is burned
  ASSERT_TRUE(dev_.WriteBlock(1, 0, PageOf(2)).ok());
  ASSERT_TRUE(dev_.Sync().ok());  // rewrite of a burned block -> remap
  EXPECT_EQ(dev_.worm_remaps(), 1u);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_.ReadBlock(1, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{2});
}

TEST_F(JukeboxTest, CacheEvictionDestagesDirtyBlocks) {
  SimClock clock;
  MemBlockStore store;
  JukeboxParams params;
  params.cache_bytes = 4 * kPageSize;  // tiny cache
  JukeboxDevice dev(&store, &clock, params, DiskParams{});
  ASSERT_TRUE(dev.CreateRelation(1).ok());
  for (uint32_t b = 0; b < 12; ++b) {
    ASSERT_TRUE(dev.WriteBlock(1, b, PageOf(static_cast<uint8_t>(b))).ok());
  }
  EXPECT_GE(dev.platter_loads(), 1u) << "evictions must destage to the platter";
  std::vector<std::byte> out(kPageSize);
  for (uint32_t b = 0; b < 12; ++b) {
    ASSERT_TRUE(dev.ReadBlock(1, b, out).ok());
    EXPECT_EQ(out[0], std::byte{static_cast<uint8_t>(b)}) << "block " << b;
  }
}

// -------------------------------------------------------------- DeviceSwitch

TEST(DeviceSwitch, BindAndResolve) {
  SimClock clock;
  MemBlockStore disk_store, nvram_store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&disk_store, &clock, DiskParams{}));
  sw.Register(kDeviceNvram, std::make_unique<NvramDevice>(&nvram_store));
  EXPECT_TRUE(sw.Has(kDeviceMagneticDisk));
  EXPECT_FALSE(sw.Has(kDeviceJukebox));

  sw.BindRelation(100, kDeviceNvram);
  auto mgr = sw.ManagerFor(100);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ((*mgr)->name(), "nvram");
  EXPECT_TRUE(sw.ManagerFor(999).status().IsNotFound());
  sw.UnbindRelation(100);
  EXPECT_FALSE(sw.ManagerFor(100).ok());
}

TEST(DeviceSwitch, LocationTransparencyAcrossDevices) {
  // The same access sequence works regardless of which device backs the
  // relation — the paper's uniform-namespace property at the device level.
  SimClock clock;
  MemBlockStore disk_store, nvram_store, juke_store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&disk_store, &clock, DiskParams{}));
  sw.Register(kDeviceNvram, std::make_unique<NvramDevice>(&nvram_store));
  sw.Register(kDeviceJukebox, std::make_unique<JukeboxDevice>(
                                  &juke_store, &clock, JukeboxParams{}, DiskParams{}));
  Oid rel = 50;
  for (DeviceId id : {kDeviceMagneticDisk, kDeviceNvram, kDeviceJukebox}) {
    sw.BindRelation(rel, id);
    auto mgr = sw.ManagerFor(rel);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->CreateRelation(rel).ok());
    ASSERT_TRUE((*mgr)->WriteBlock(rel, 0, PageOf(static_cast<uint8_t>(id + 1))).ok());
    std::vector<std::byte> out(kPageSize);
    ASSERT_TRUE((*mgr)->ReadBlock(rel, 0, out).ok());
    EXPECT_EQ(out[0], std::byte{static_cast<uint8_t>(id + 1)});
    ++rel;
  }
}

// ------------------------------------------ corruption via self-identification

TEST(SelfIdent, CorruptedPageDetectedThroughBufferPool) {
  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&store, &clock, DiskParams{}));
  sw.BindRelation(1, kDeviceMagneticDisk);
  ASSERT_TRUE(sw.Get(kDeviceMagneticDisk)->CreateRelation(1).ok());
  BufferPool pool(&sw, 8, &clock);
  {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());
  // Flip a byte inside the self-ident field region (offset 12..20).
  ASSERT_TRUE(store.CorruptByte(1, 0, 13).ok());
  auto pin = pool.Pin(1, 0);
  ASSERT_FALSE(pin.ok());
  EXPECT_EQ(pin.status().code(), ErrorCode::kCorruption);
}

}  // namespace
}  // namespace invfs
