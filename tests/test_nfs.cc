// Unit tests: the FFS simulator and the ULTRIX NFS + PRESTOserve baseline.

#include <gtest/gtest.h>

#include <cstring>

#include "src/nfs/nfs.h"
#include "src/util/random.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- FfsSim

class FfsTest : public ::testing::Test {
 protected:
  FfsTest() : ffs_(&clock_, DiskParams{}, /*cache_pages=*/32) {}
  SimClock clock_;
  FfsSim ffs_;
};

TEST_F(FfsTest, CreateWriteReadRoundtrip) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  const std::string data = "ffs bytes";
  ASSERT_TRUE(ffs_.WriteAt("/f", 0, std::as_bytes(std::span(data.data(), data.size())),
                           false)
                  .ok());
  EXPECT_EQ(*ffs_.Size("/f"), 9);
  std::vector<std::byte> out(9);
  auto n = ffs_.ReadAt("/f", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 9);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 9), 0);
}

TEST_F(FfsTest, CrossBlockWritesAndSparseReads) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  std::vector<std::byte> data(3 * kPageSize, std::byte{0x44});
  ASSERT_TRUE(ffs_.WriteAt("/f", kPageSize / 2, data, false).ok());
  EXPECT_EQ(*ffs_.Size("/f"), static_cast<int64_t>(kPageSize / 2 + data.size()));
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(ffs_.ReadAt("/f", 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0});  // hole reads zero
  EXPECT_EQ(out[kPageSize / 2], std::byte{0x44});
}

TEST_F(FfsTest, EofSemantics) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  std::vector<std::byte> out(10);
  EXPECT_EQ(*ffs_.ReadAt("/f", 0, out), 0);
  std::vector<std::byte> tiny{std::byte{1}};
  ASSERT_TRUE(ffs_.WriteAt("/f", 0, tiny, false).ok());
  EXPECT_EQ(*ffs_.ReadAt("/f", 0, out), 1);
  EXPECT_EQ(*ffs_.ReadAt("/f", 5, out), 0);
}

TEST_F(FfsTest, RemoveAndMissing) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  EXPECT_EQ(ffs_.Create("/f").code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(ffs_.Remove("/f").ok());
  EXPECT_FALSE(ffs_.Exists("/f"));
  EXPECT_TRUE(ffs_.Size("/f").status().IsNotFound());
  std::vector<std::byte> out(4);
  EXPECT_TRUE(ffs_.ReadAt("/f", 0, out).status().IsNotFound());
}

TEST_F(FfsTest, CacheMakesRereadsFree) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  std::vector<std::byte> page(kPageSize, std::byte{1});
  ASSERT_TRUE(ffs_.WriteAt("/f", 0, page, true).ok());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(ffs_.ReadAt("/f", 0, out).ok());
  const SimMicros t0 = clock_.Peek();
  ASSERT_TRUE(ffs_.ReadAt("/f", 0, out).ok());
  EXPECT_EQ(clock_.Peek(), t0) << "cached read should cost no disk time";
}

TEST_F(FfsTest, FlushCachesForcesColdReads) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  std::vector<std::byte> page(kPageSize, std::byte{1});
  ASSERT_TRUE(ffs_.WriteAt("/f", 0, page, true).ok());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(ffs_.ReadAt("/f", 0, out).ok());
  ASSERT_TRUE(ffs_.FlushCaches().ok());
  const SimMicros t0 = clock_.Peek();
  ASSERT_TRUE(ffs_.ReadAt("/f", 0, out).ok());
  EXPECT_GT(clock_.Peek(), t0);
}

TEST_F(FfsTest, SequentialReadAheadBeatsRandom) {
  ASSERT_TRUE(ffs_.Create("/f").ok());
  std::vector<std::byte> big(64 * kPageSize, std::byte{7});
  ASSERT_TRUE(ffs_.WriteAt("/f", 0, big, false).ok());
  ASSERT_TRUE(ffs_.FlushCaches().ok());
  std::vector<std::byte> out(kPageSize);
  const SimMicros t0 = clock_.Peek();
  for (int b = 0; b < 64; ++b) {
    ASSERT_TRUE(ffs_.ReadAt("/f", static_cast<int64_t>(b) * kPageSize, out).ok());
  }
  const SimMicros sequential = clock_.Peek() - t0;
  ASSERT_TRUE(ffs_.FlushCaches().ok());
  Rng rng(3);
  const SimMicros t1 = clock_.Peek();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        ffs_.ReadAt("/f", static_cast<int64_t>(rng.Uniform(64)) * kPageSize, out).ok());
  }
  const SimMicros random = clock_.Peek() - t1;
  EXPECT_GT(random, sequential);
}

TEST_F(FfsTest, StableWritesCostMoreThanAsync) {
  ASSERT_TRUE(ffs_.Create("/a").ok());
  ASSERT_TRUE(ffs_.Create("/b").ok());
  std::vector<std::byte> page(kPageSize, std::byte{1});
  const SimMicros t0 = clock_.Peek();
  for (int b = 0; b < 16; ++b) {
    ASSERT_TRUE(ffs_.WriteAt("/a", static_cast<int64_t>(b) * kPageSize, page, true).ok());
  }
  const SimMicros stable = clock_.Peek() - t0;
  const SimMicros t1 = clock_.Peek();
  for (int b = 0; b < 16; ++b) {
    ASSERT_TRUE(
        ffs_.WriteAt("/b", static_cast<int64_t>(b) * kPageSize, page, false).ok());
  }
  const SimMicros async = clock_.Peek() - t1;
  EXPECT_GT(stable, 3 * async);
}

// ---------------------------------------------------------------- NFS

class NfsTest : public ::testing::Test {
 protected:
  NfsTest()
      : ffs_(&clock_, DiskParams{}, 300),
        server_(&clock_, &ffs_, NfsServerOptions{}),
        net_(&clock_, NfsNetParams()),
        client_(&server_, &net_) {}
  SimClock clock_;
  FfsSim ffs_;
  NfsServer server_;
  NetModel net_;
  NfsClient client_;
};

TEST_F(NfsTest, ClientRoundtripSplitsIntoPageRpcs) {
  auto fd = client_.Creat("/f");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(3 * kPageSize + 100, std::byte{0x66});
  const uint64_t msgs_before = net_.total_messages();
  auto n = client_.Write(*fd, data);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, static_cast<int64_t>(data.size()));
  // 4 WRITE RPCs x 2 legs (NFS v2 8KB max transfer).
  EXPECT_EQ(net_.total_messages() - msgs_before, 8u);
  ASSERT_TRUE(client_.Seek(*fd, 0, Whence::kSet).ok());
  std::vector<std::byte> out(data.size());
  auto read = client_.Read(*fd, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, static_cast<int64_t>(data.size()));
  EXPECT_EQ(out, data);
  ASSERT_TRUE(client_.Close(*fd).ok());
}

TEST_F(NfsTest, SeekSemantics) {
  auto fd = client_.Creat("/f");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> data(100, std::byte{1});
  ASSERT_TRUE(client_.Write(*fd, data).ok());
  EXPECT_EQ(*client_.Seek(*fd, -10, Whence::kEnd), 90);
  EXPECT_EQ(*client_.Seek(*fd, 5, Whence::kCur), 95);
  EXPECT_EQ(*client_.Seek(*fd, 0, Whence::kSet), 0);
  EXPECT_FALSE(client_.Seek(*fd, -1, Whence::kSet).ok());
}

TEST_F(NfsTest, PrestoAbsorbsWritesUntilFull) {
  auto fd = client_.Creat("/f");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> page(kPageSize, std::byte{2});
  // 1 MB NVRAM absorbs 128 pages without disk traffic.
  const uint64_t disk_ios_before = ffs_.disk().total_ios();
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(client_.Write(*fd, page).ok());
  }
  EXPECT_EQ(ffs_.disk().total_ios(), disk_ios_before);
  EXPECT_GT(server_.nvram_bytes_dirty(), 0u);
  // The next write exceeds capacity: drain hits the disk.
  ASSERT_TRUE(client_.Write(*fd, page).ok());
  EXPECT_GT(ffs_.disk().total_ios(), disk_ios_before);
}

TEST_F(NfsTest, WithoutPrestoEveryWriteIsSynchronous) {
  SimClock clock;
  FfsSim ffs(&clock, DiskParams{}, 300);
  NfsServerOptions options;
  options.presto.enabled = false;
  NfsServer server(&clock, &ffs, options);
  NetModel net(&clock, NfsNetParams());
  NfsClient client(&server, &net);
  auto fd = client.Creat("/f");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> page(kPageSize, std::byte{3});
  const uint64_t ios_before = ffs.disk().total_ios();
  ASSERT_TRUE(client.Write(*fd, page).ok());
  EXPECT_GT(ffs.disk().total_ios(), ios_before)
      << "stateless NFS must be on the platter before the reply";
}

TEST_F(NfsTest, ReadOnlyDescriptorRejectsWrites) {
  auto fd = client_.Creat("/f");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_.Close(*fd).ok());
  auto ro = client_.Open("/f", /*writable=*/false);
  ASSERT_TRUE(ro.ok());
  std::vector<std::byte> page(8, std::byte{1});
  EXPECT_EQ(client_.Write(*ro, page).status().code(), ErrorCode::kReadOnly);
}

TEST_F(NfsTest, FlushCachesDrainsNvram) {
  auto fd = client_.Creat("/f");
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> page(kPageSize, std::byte{4});
  ASSERT_TRUE(client_.Write(*fd, page).ok());
  EXPECT_GT(server_.nvram_bytes_dirty(), 0u);
  ASSERT_TRUE(server_.FlushCaches().ok());
  EXPECT_EQ(server_.nvram_bytes_dirty(), 0u);
  // Data still correct afterwards.
  ASSERT_TRUE(client_.Seek(*fd, 0, Whence::kSet).ok());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(client_.Read(*fd, out).ok());
  EXPECT_EQ(out[17], std::byte{4});
}

}  // namespace
}  // namespace invfs
