// End-to-end smoke tests of the storage engine: bootstrap, DDL, DML, MVCC
// visibility, time travel, crash recovery.

#include <gtest/gtest.h>

#include "src/catalog/database.h"

namespace invfs {
namespace {

Schema TestSchema() {
  return Schema{{"k", TypeId::kInt4}, {"v", TypeId::kText}};
}

TEST(DatabaseSmoke, BootstrapAndReopen) {
  StorageEnv env;
  {
    auto db = Database::Open(&env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->catalog().GetTable("pg_class").ok());
  }
  {
    auto db = Database::Open(&env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->catalog().GetTable("pg_class").ok());
  }
}

TEST(DatabaseSmoke, CreateInsertScanCommit) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;

  auto txn = db.Begin();
  ASSERT_TRUE(txn.ok());
  auto table = db.catalog().CreateTable(*txn, "t", TestSchema(), kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (int i = 0; i < 100; ++i) {
    auto tid = db.InsertRow(*txn, *table,
                            {Value::Int4(i), Value::Text("row" + std::to_string(i))});
    ASSERT_TRUE(tid.ok()) << tid.status().ToString();
  }
  ASSERT_TRUE(db.Commit(*txn).ok());

  auto txn2 = db.Begin();
  ASSERT_TRUE(txn2.ok());
  Snapshot snap = db.SnapshotFor(*txn2);
  int count = 0;
  auto it = (*table)->heap->Scan(snap);
  while (it.Next()) {
    ++count;
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(count, 100);
  ASSERT_TRUE(db.Commit(*txn2).ok());
}

TEST(DatabaseSmoke, AbortHidesRows) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;

  auto setup = db.Begin();
  auto table = db.catalog().CreateTable(*setup, "t", TestSchema(), kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db.Commit(*setup).ok());

  auto txn = db.Begin();
  ASSERT_TRUE(db.InsertRow(*txn, *table, {Value::Int4(1), Value::Text("x")}).ok());
  ASSERT_TRUE(db.Abort(*txn).ok());

  auto reader = db.Begin();
  auto it = (*table)->heap->Scan(db.SnapshotFor(*reader));
  EXPECT_FALSE(it.Next());
  ASSERT_TRUE(db.Commit(*reader).ok());
}

TEST(DatabaseSmoke, TimeTravelSeesOldVersions) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;

  auto setup = db.Begin();
  auto table = db.catalog().CreateTable(*setup, "t", TestSchema(), kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  auto tid = db.InsertRow(*setup, *table, {Value::Int4(1), Value::Text("old")});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db.Commit(*setup).ok());

  const Timestamp before_update = db.Now();

  auto update = db.Begin();
  auto new_tid =
      db.ReplaceRow(*update, *table, *tid, {Value::Int4(1), Value::Text("new")});
  ASSERT_TRUE(new_tid.ok());
  ASSERT_TRUE(db.Commit(*update).ok());

  // Current snapshot sees "new".
  auto reader = db.Begin();
  auto now_it = (*table)->heap->Scan(db.SnapshotFor(*reader));
  ASSERT_TRUE(now_it.Next());
  EXPECT_EQ(now_it.row()[1].AsText(), "new");
  EXPECT_FALSE(now_it.Next());
  ASSERT_TRUE(db.Commit(*reader).ok());

  // Historical snapshot sees "old".
  auto old_it = (*table)->heap->Scan(db.SnapshotAt(before_update));
  ASSERT_TRUE(old_it.Next());
  EXPECT_EQ(old_it.row()[1].AsText(), "old");
  EXPECT_FALSE(old_it.Next());
}

TEST(DatabaseSmoke, CrashRecoveryRollsBackInFlight) {
  StorageEnv env;
  Oid table_oid = kInvalidOid;
  {
    auto db_or = Database::Open(&env);
    ASSERT_TRUE(db_or.ok());
    Database& db = **db_or;
    auto setup = db.Begin();
    auto table =
        db.catalog().CreateTable(*setup, "t", TestSchema(), kDeviceMagneticDisk);
    ASSERT_TRUE(table.ok());
    table_oid = (*table)->oid;
    ASSERT_TRUE(db.InsertRow(*setup, *table, {Value::Int4(1), Value::Text("durable")})
                    .ok());
    ASSERT_TRUE(db.Commit(*setup).ok());

    // In-flight transaction at crash time.
    auto inflight = db.Begin();
    ASSERT_TRUE(
        db.InsertRow(*inflight, *table, {Value::Int4(2), Value::Text("doomed")}).ok());
    // Force its pages out so the uncommitted tuple IS on stable storage; the
    // commit log is what must hide it.
    ASSERT_TRUE(db.buffers().FlushAll().ok());
    db.Crash();
  }
  {
    auto db_or = Database::Open(&env);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    Database& db = **db_or;
    auto table = db.catalog().GetTableByOid(table_oid);
    ASSERT_TRUE(table.ok());
    auto reader = db.Begin();
    auto it = (*table)->heap->Scan(db.SnapshotFor(*reader));
    ASSERT_TRUE(it.Next());
    EXPECT_EQ(it.row()[1].AsText(), "durable");
    EXPECT_FALSE(it.Next()) << "uncommitted tuple visible after crash";
    ASSERT_TRUE(db.Commit(*reader).ok());
  }
}

TEST(DatabaseSmoke, IndexLookupFindsRows) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;

  auto txn = db.Begin();
  auto table = db.catalog().CreateTable(*txn, "t", TestSchema(), kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  auto index = db.catalog().CreateIndex(*txn, *table, {0});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        db.InsertRow(*txn, *table, {Value::Int4(i), Value::Text("v" + std::to_string(i))})
            .ok());
  }
  ASSERT_TRUE(db.Commit(*txn).ok());

  auto tids = (*index)->btree->Lookup(EncodeInt4Key(250));
  ASSERT_TRUE(tids.ok());
  ASSERT_EQ(tids->size(), 1u);
  auto reader = db.Begin();
  auto row = (*table)->heap->Fetch(db.SnapshotFor(*reader), (*tids)[0]);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ((**row)[1].AsText(), "v250");
  ASSERT_TRUE(db.Commit(*reader).ok());
  ASSERT_TRUE((*index)->btree->CheckInvariants().ok());
}

}  // namespace
}  // namespace invfs
