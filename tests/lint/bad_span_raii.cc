// invfs_lint fixture: MUST trip [span-raii] twice: a raw RecordSpan() call
// and a direct write to the span layer's thread-local context, both outside
// src/obs/span.{h,cc}. Never compiled.
#include "src/obs/span.h"

namespace fixture {

void HandRolledSpan(invfs::SpanRing* ring) {
  invfs::SpanRecord r;
  r.name = "sneaky.span";
  ring->RecordSpan(r);
  invfs::obs_internal::t_trace_id = 42;
}

}  // namespace fixture
