// invfs_lint fixture: MUST trip [cv-wait-extra-lock]. Never compiled.
#include "src/util/mutex.h"

namespace fixture {

class Queue {
 public:
  void Bad() {
    invfs::MutexLock outer(other_mu_);
    invfs::MutexLock lock(mu_);
    // Wait releases only mu_; other_mu_ stays held across the sleep, starving
    // whoever must acquire it to make the predicate true.
    cv_.Wait(mu_);
  }

 private:
  invfs::Mutex other_mu_;
  invfs::Mutex mu_;
  invfs::CondVar cv_;
};

}  // namespace fixture
