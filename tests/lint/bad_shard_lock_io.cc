// invfs_lint fixture: MUST trip [shard-lock-io]. Never compiled.
#include "src/util/mutex.h"

namespace fixture {

struct Shard {
  invfs::Mutex mu;
};

class Pool {
 public:
  void Bad(Shard& s) {
    invfs::MutexLock shard_lock(s.mu);
    // Device I/O while a shard mutex is held: inverts the io_mu_-before-shard
    // lock order and blocks the hit path on a disk.
    WriteBlock(1, 0);
  }

  void WriteBlock(int rel, int block);
};

}  // namespace fixture
