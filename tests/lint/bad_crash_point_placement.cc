// invfs_lint fixture: MUST trip [crash-point-placement] twice: the name is
// not in the catalog AND this file is not a write-boundary file. Never
// compiled.
#include "src/fault/crash_points.h"

namespace fixture {

void NotAWriteBoundary() {
  invfs::CrashPointRegistry::Hit("totally.made_up_point");
}

}  // namespace fixture
