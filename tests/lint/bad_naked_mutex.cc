// invfs_lint fixture: MUST trip [naked-mutex]. Never compiled — this file is
// input to the linter only (see lint_detects_naked_mutex in tests/CMakeLists).
#include <mutex>

namespace fixture {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;  // invisible to thread safety analysis: forbidden
  int n_ = 0;
};

}  // namespace fixture
