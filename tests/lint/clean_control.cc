// invfs_lint fixture: must pass all rules clean (positive control proving the
// linter does not flag idiomatic code). Never compiled.
#include "src/obs/span.h"
#include "src/util/mutex.h"

namespace fixture {

struct Shard {
  invfs::Mutex mu;
  int hits GUARDED_BY(mu) = 0;
};

class Pool {
 public:
  // Shard-locked section touches only in-memory state; I/O happens after the
  // scope closes.
  void Good(Shard& s) {
    {
      invfs::MutexLock shard_lock(s.mu);
      ++s.hits;
    }
    WriteBlock(1, 0);
  }

  // Single designated mutex around the wait.
  void GoodWait() {
    invfs::MutexLock lock(mu_);
    cv_.Wait(mu_);
  }

  void WriteBlock(int rel, int block);

 private:
  invfs::Mutex mu_;
  invfs::CondVar cv_;
};

// The suppression comment waives a rule at a documented site.
inline void SuppressedIo(Shard& s, Pool& p) {
  invfs::MutexLock shard_lock(s.mu);
  p.WriteBlock(2, 1);  // invfs-lint: allow(shard-lock-io)
}

// Spans begin and end only through the RAII helper — the span-raii idiom.
inline void GoodSpan(invfs::SpanRing* ring) {
  invfs::ScopedSpan span(ring, "fixture.op", 1, 2);
  span.set_a(3);
}

}  // namespace fixture
