// Unit tests: POSTQUEL lexer, parser, expression evaluator, and executor.

#include <gtest/gtest.h>

#include "src/query/ast_print.h"
#include "src/query/eval.h"
#include "src/query/executor.h"
#include "src/query/lexer.h"
#include "src/query/parser.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- lexer

TEST(Lexer, TokenKinds) {
  auto toks = Lex("retrieve (x.y) where a = \"str\" and b >= 3.5 or c != $2");
  ASSERT_TRUE(toks.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *toks) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds.front(), TokKind::kIdent);
  EXPECT_EQ(kinds.back(), TokKind::kEnd);
  // Spot checks.
  EXPECT_EQ((*toks)[1].text, "(");
  EXPECT_EQ((*toks)[3].text, ".");
  int strings = 0, floats = 0, params = 0;
  for (const Token& t : *toks) {
    strings += t.kind == TokKind::kString;
    floats += t.kind == TokKind::kFloat;
    params += t.kind == TokKind::kParam;
  }
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(floats, 1);
  EXPECT_EQ(params, 1);
}

TEST(Lexer, TwoCharOperators) {
  auto toks = Lex("a != b <= c >= d");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "!=");
  EXPECT_EQ((*toks)[3].text, "<=");
  EXPECT_EQ((*toks)[5].text, ">=");
}

TEST(Lexer, StringEscapes) {
  auto toks = Lex("\"a\\\"b\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "a\"b");
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_FALSE(Lex("a # b").ok());
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("$x").ok());
}

// ---------------------------------------------------------------- parser

TEST(Parser, RetrieveFull) {
  auto stmt = ParseStatement(
      "retrieve (n.filename, sz = size(n.file)) from n in naming, f in fileatt "
      "where n.file = f.file and f.size > 100");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StmtKind::kRetrieve);
  ASSERT_EQ(stmt->targets.size(), 2u);
  EXPECT_EQ(stmt->targets[0].alias, "filename");
  EXPECT_EQ(stmt->targets[1].alias, "sz");
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].var, "n");
  EXPECT_EQ(stmt->from[1].table, "fileatt");
  ASSERT_NE(stmt->where, nullptr);
}

TEST(Parser, TimeTravelBracket) {
  auto stmt = ParseStatement("retrieve (n.filename) from n in naming[\"12345\"]");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->from[0].as_of.has_value());
  EXPECT_EQ(*stmt->from[0].as_of, 12345u);
  auto stmt2 = ParseStatement("retrieve (n.filename) from n in naming[777]");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(*stmt2->from[0].as_of, 777u);
}

TEST(Parser, AppendReplaceDelete) {
  auto append = ParseStatement("append t (a = 1, b = \"x\")");
  ASSERT_TRUE(append.ok());
  EXPECT_EQ(append->kind, StmtKind::kAppend);
  EXPECT_EQ(append->sets.size(), 2u);

  auto replace = ParseStatement("replace t (a = t.a + 1) where t.b = \"x\"");
  ASSERT_TRUE(replace.ok());
  EXPECT_EQ(replace->kind, StmtKind::kReplace);

  auto del = ParseStatement("delete t where t.a < 0");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, StmtKind::kDelete);
}

TEST(Parser, DdlStatements) {
  auto create = ParseStatement("create t (a = int4, b = text)");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->columns.size(), 2u);
  EXPECT_TRUE(ParseStatement("define type movie").ok());
  EXPECT_TRUE(ParseStatement(
                  "define function f (2) returns int4 as postquel \"$1 + $2\"")
                  .ok());
  EXPECT_TRUE(ParseStatement("define index on t (a)").ok());
  EXPECT_TRUE(ParseStatement("vacuum t").ok());
  auto rule = ParseStatement(
      "define rule r on fileatt where fileatt.size > 100 do migrate 2");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->rule_device, 2);
}

TEST(Parser, Precedence) {
  // a = 1 or b = 2 and c = 3  ->  or(a=1, and(b=2, c=3))
  auto e = ParseExpression("a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->name, "or");
  EXPECT_EQ((*e)->args[1]->name, "and");
  // 1 + 2 * 3 -> +(1, *(2,3))
  auto arith = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(arith.ok());
  EXPECT_EQ((*arith)->name, "+");
  EXPECT_EQ((*arith)->args[1]->name, "*");
}

TEST(Parser, SyntaxErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(ParseStatement("retrieve").ok());
  EXPECT_FALSE(ParseStatement("retrieve (a").ok());
  EXPECT_FALSE(ParseStatement("frobnicate x").ok());
  EXPECT_FALSE(ParseStatement("append t").ok());
  EXPECT_FALSE(ParseStatement("retrieve (a) from x naming").ok());
  EXPECT_FALSE(ParseStatement("define rule r on t where 1 do shred").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
}

TEST(AstPrint, RoundtripsThroughParser) {
  const char* exprs[] = {
      "(a.b = 3)",
      "((size(f.file) / 2) > 100)",
      "((x and y) or (not z))",
      "(\"RISC\" in keywords(file))",
  };
  for (const char* src : exprs) {
    auto e = ParseExpression(src);
    ASSERT_TRUE(e.ok()) << src;
    auto printed = ExprToString(**e);
    auto reparsed = ParseExpression(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(ExprToString(**reparsed), printed);
  }
}

// ------------------------------------------------------------- evaluator

class EvalTest : public ::testing::Test {
 protected:
  Result<Value> Run(const std::string& src) {
    auto e = ParseExpression(src);
    if (!e.ok()) {
      return e.status();
    }
    EvalContext ctx;
    ctx.registry = &registry_;
    return Eval(**e, ctx);
  }
  FunctionRegistry registry_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3")->AsInt8(), 7);
  EXPECT_EQ(Run("10 - 4 - 3")->AsInt8(), 3);
  EXPECT_EQ(Run("7 / 2")->AsFloat8(), 3.5) << "inexact int division promotes";
  EXPECT_EQ(Run("8 / 2")->AsInt8(), 4);
  EXPECT_EQ(Run("2.5 * 2")->AsFloat8(), 5.0);
  EXPECT_EQ(Run("-(3)")->AsInt8(), -3);
  EXPECT_FALSE(Run("1 / 0").ok());
}

TEST_F(EvalTest, ComparisonsAndLogic) {
  EXPECT_TRUE(Run("1 < 2")->AsBool());
  EXPECT_TRUE(Run("\"abc\" = \"abc\"")->AsBool());
  EXPECT_TRUE(Run("\"ab\" != \"abc\"")->AsBool());
  EXPECT_TRUE(Run("1 < 2 and 2 < 3")->AsBool());
  EXPECT_TRUE(Run("1 > 2 or 3 > 2")->AsBool());
  EXPECT_TRUE(Run("not (1 > 2)")->AsBool());
  EXPECT_FALSE(Run("\"a\" < 3").ok()) << "text/number comparison is a type error";
}

TEST_F(EvalTest, SubstringIn) {
  EXPECT_TRUE(Run("\"RISC\" in \"RISC processors are fast\"")->AsBool());
  EXPECT_FALSE(Run("\"CISC\" in \"RISC only\"")->AsBool());
  EXPECT_FALSE(Run("1 in \"123\"").ok());
}

TEST_F(EvalTest, NullPropagation) {
  EXPECT_TRUE(Run("null + 1")->is_null());
  EXPECT_TRUE(Run("null = null")->is_null());
  EXPECT_FALSE(Run("null and true")->AsBool()) << "null is falsy in boolean position";
}

TEST_F(EvalTest, NativeFunctionDispatch) {
  registry_.RegisterNative("triple",
                           [](std::span<const Value> args, EvalContext&) -> Result<Value> {
                             return Value::Int8(*args[0].ToInt64() * 3);
                           });
  EXPECT_EQ(Run("triple(14)")->AsInt8(), 42);
  EXPECT_TRUE(Run("no_such_fn(1)").status().IsNotFound());
}

// -------------------------------------------------------------- executor

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    exec_ = std::make_unique<Executor>(db_.get(), &registry_);
    Exec("create emp (name = text, salary = int4, dept = text)");
    Exec("append emp (name = \"alice\", salary = 100, dept = \"db\")");
    Exec("append emp (name = \"bob\", salary = 80, dept = \"os\")");
    Exec("append emp (name = \"carol\", salary = 120, dept = \"db\")");
  }

  ResultSet Exec(const std::string& text) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    auto rs = exec_->ExecuteQuery(text, *txn);
    EXPECT_TRUE(rs.ok()) << text << " -> " << rs.status().ToString();
    EXPECT_TRUE(db_->Commit(*txn).ok());
    return rs.ok() ? *rs : ResultSet{};
  }

  Status ExecExpectError(const std::string& text) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    auto rs = exec_->ExecuteQuery(text, *txn);
    EXPECT_FALSE(rs.ok()) << text;
    (void)db_->Abort(*txn);
    return rs.status();
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  FunctionRegistry registry_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExecutorTest, RetrieveWithFilterAndProjection) {
  auto rs = Exec("retrieve (e.name) from e in emp where e.salary > 90");
  ASSERT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, RetrieveComputedTargets) {
  auto rs = Exec(
      "retrieve (e.name, doubled = e.salary * 2) from e in emp "
      "where e.name = \"bob\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.columns[1], "doubled");
  EXPECT_EQ(rs.rows[0][1].AsInt8(), 160);
}

TEST_F(ExecutorTest, ImplicitRangeVariable) {
  // POSTQUEL allowed using the table name directly.
  auto rs = Exec("retrieve (emp.name) where emp.dept = \"os\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "bob");
}

TEST_F(ExecutorTest, JoinTwoTables) {
  Exec("create dept (dname = text, floor = int4)");
  Exec("append dept (dname = \"db\", floor = 3)");
  Exec("append dept (dname = \"os\", floor = 4)");
  auto rs = Exec(
      "retrieve (e.name, d.floor) from e in emp, d in dept "
      "where e.dept = d.dname and d.floor = 3");
  ASSERT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, IndexAcceleratedEquality) {
  Exec("define index on emp (salary)");
  auto rs = Exec("retrieve (e.name) from e in emp where e.salary = 120");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "carol");
  // And non-equality still works (falls back to scan).
  auto rs2 = Exec("retrieve (e.name) from e in emp where e.salary < 100");
  ASSERT_EQ(rs2.rows.size(), 1u);
}

TEST_F(ExecutorTest, ReplaceUpdatesMatchingRows) {
  auto rs = Exec("replace emp (salary = emp.salary + 10) where emp.dept = \"db\"");
  EXPECT_EQ(rs.rows[0][0].AsInt8(), 2);
  auto check = Exec("retrieve (e.salary) from e in emp where e.name = \"alice\"");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0][0].AsInt4(), 110);
}

TEST_F(ExecutorTest, DeleteRemovesVisibly) {
  Exec("delete emp where emp.name = \"bob\"");
  auto rs = Exec("retrieve (e.name) from e in emp");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, TimeTravelBracketSeesThePast) {
  const Timestamp before = db_->Now();
  Exec("delete emp where emp.name = \"alice\"");
  auto now_rs = Exec("retrieve (e.name) from e in emp where e.name = \"alice\"");
  EXPECT_TRUE(now_rs.rows.empty());
  auto then_rs = Exec("retrieve (e.name) from e in emp[" + std::to_string(before) +
                      "] where e.name = \"alice\"");
  EXPECT_EQ(then_rs.rows.size(), 1u);
}

TEST_F(ExecutorTest, PostquelLanguageFunction) {
  Exec("define function raise (1) returns int8 as postquel \"$1 * 110 / 100\"");
  auto rs = Exec("retrieve (e.name, next = raise(e.salary)) from e in emp "
                 "where e.name = \"carol\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsInt8(), 132);
}

TEST_F(ExecutorTest, AppendCoercesTypes) {
  Exec("create wide (big = int8, ts = time)");
  Exec("append wide (big = 5, ts = 123)");  // int4 literals coerced
  auto rs = Exec("retrieve (w.big, w.ts) from w in wide");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt8(), 5);
  EXPECT_EQ(rs.rows[0][1].AsTimestamp(), 123u);
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(ExecExpectError("retrieve (e.name) from e in nonexistent").IsNotFound());
  EXPECT_TRUE(ExecExpectError("retrieve (e.nocolumn) from e in emp").IsNotFound());
  EXPECT_FALSE(ExecExpectError("append emp (bogus = 1)").ok());
  EXPECT_FALSE(
      ExecExpectError("define function bad (1) returns int4 as native \"missing\"")
          .ok());
}

TEST_F(ExecutorTest, UncommittedDmlInvisibleToOthers) {
  auto writer = db_->Begin();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      exec_->ExecuteQuery("append emp (name = \"dave\", salary = 1, dept = \"x\")",
                          *writer)
          .ok());
  // A second transaction must not see dave yet... but it would block on the
  // table lock under strict 2PL, so check via a snapshot directly.
  Snapshot outsider{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
  auto table = db_->catalog().GetTable("emp");
  ASSERT_TRUE(table.ok());
  int count = 0;
  auto it = (*table)->heap->Scan(outsider);
  while (it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 3);
  ASSERT_TRUE(db_->Commit(*writer).ok());
}

TEST_F(ExecutorTest, ResultSetFormatting) {
  auto rs = Exec("retrieve (e.name) from e in emp where e.name = \"alice\"");
  const std::string text = rs.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);
}

// ------------------------------------------------- virtual stats tables

// SELECT over invfs_stats after a known workload must return exact live
// counts: fixture SetUp runs only DML/DDL (never counted), so the retrieves
// issued here are the whole history of query.* metrics.
TEST_F(ExecutorTest, InvfsStatsReturnsExactQueryCounters) {
  // Two ordinary retrieves: emp holds 3 tuples, each sequential scan reads
  // all of them. After these, plans_run = 2 and tuples_scanned = 6.
  Exec("retrieve (e.name) from e in emp");
  Exec("retrieve (e.name) from e in emp where e.salary > 90");

  // plans_run is bumped before range binding, so the stats query observes
  // itself: it is the 3rd plan.
  auto rs = Exec(
      "retrieve (s.value) from s in invfs_stats "
      "where s.name = \"query.plans_run\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt8(), 3);

  // Virtual rows are excluded from tuples_scanned, so it is still exactly 6.
  rs = Exec(
      "retrieve (s.value) from s in invfs_stats "
      "where s.name = \"query.tuples_scanned\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt8(), 6);
}

TEST_F(ExecutorTest, InvfsStatsExposesStorageCounters) {
  // The fixture's create/append workload must have gone through the buffer
  // pool and transaction manager; their counters surface with kind tags.
  auto rs = Exec(
      "retrieve (s.name, s.kind, s.value) from s in invfs_stats "
      "where s.name = \"txn.commits\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsText(), "counter");
  EXPECT_GT(rs.rows[0][2].AsInt8(), 0);

  rs = Exec(
      "retrieve (s.value) from s in invfs_stats "
      "where s.name = \"buffer.hits\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt8(),
            static_cast<int64_t>(db_->buffers().hits()));
}

TEST_F(ExecutorTest, InvfsTraceShowsRecentTransactions) {
  // Every Exec() in the fixture began and committed a transaction; the trace
  // ring must hold matching begin/commit events.
  auto rs = Exec(
      "retrieve (t.event, t.a) from t in invfs_trace "
      "where t.event = \"txn.commit\"");
  EXPECT_GE(rs.rows.size(), 4u);  // 4 fixture statements at minimum
  // Joinable against stats like any relation: count via projection size.
  auto begins = Exec(
      "retrieve (t.seq) from t in invfs_trace where t.event = \"txn.begin\"");
  EXPECT_GE(begins.rows.size(), rs.rows.size());
}

TEST_F(ExecutorTest, VirtualTablesRejectTimeTravel) {
  Status s = ExecExpectError(
      "retrieve (s.name) from s in invfs_stats[\"12345\"]");
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument) << s.ToString();
  s = ExecExpectError("retrieve (s.name) from s in invfs_spans[\"12345\"]");
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument) << s.ToString();
  s = ExecExpectError("retrieve (s.op) from s in invfs_slo[\"12345\"]");
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument) << s.ToString();
}

TEST_F(ExecutorTest, InvfsSpansShowsQueryExecutionSpans) {
  // Every Exec() runs through Executor::Execute, which opens a "query.exec"
  // span; the running query's own span has not ended when rows materialize,
  // so only completed statements appear. The fixture ran 4.
  auto rs = Exec(
      "retrieve (sp.trace, sp.span, sp.duration) from sp in invfs_spans "
      "where sp.name = \"query.exec\"");
  EXPECT_GE(rs.rows.size(), 4u);
  for (const Row& row : rs.rows) {
    EXPECT_NE(row[0].AsInt8(), 0);  // every span belongs to a trace
    EXPECT_NE(row[1].AsInt8(), 0);  // and has its own id
  }
}

TEST_F(ExecutorTest, InvfsSpansJoinsWithInvfsTraceOnXid) {
  // txn.begin is recorded twice — a span (a = xid) and a trace event
  // (a = xid) — so the two observability relations join on that attribute
  // like any ordinary pair of tables.
  auto rs = Exec(
      "retrieve (sp.span, t.seq) from sp in invfs_spans, t in invfs_trace "
      "where sp.name = \"txn.begin\" and t.event = \"txn.begin\" "
      "and sp.a = t.a");
  EXPECT_GE(rs.rows.size(), 4u);  // at least the fixture's transactions
}

TEST_F(ExecutorTest, InvfsSloReportsEveryDeclaredTarget) {
  // One row per target declared in DatabaseOptions; this fixture never calls
  // the file-system entry points, so counts may be zero — but the targets
  // themselves must surface. Never assert ok here: sanitizer builds are
  // 10-20x slower and may legitimately breach latency targets.
  auto rs = Exec(
      "retrieve (s.op, s.count, s.target_p99, s.ok) from s in invfs_slo");
  ASSERT_EQ(rs.rows.size(), db_->options().slo_targets.size());
  for (const Row& row : rs.rows) {
    EXPECT_FALSE(row[0].AsText().empty());
    EXPECT_GT(row[2].AsInt8(), 0);  // every default target constrains p99
  }
  // An unexercised op class evaluates as ok (vacuously meeting its target).
  rs = Exec(
      "retrieve (s.count, s.ok) from s in invfs_slo where s.op = \"p_read\"");
  ASSERT_EQ(rs.rows.size(), 1u);
  if (rs.rows[0][0].AsInt8() == 0) {
    EXPECT_TRUE(rs.rows[0][1].AsBool());
  }
}

}  // namespace
}  // namespace invfs
