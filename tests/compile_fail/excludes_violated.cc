// compile-fail case: calling an EXCLUDES(mu_) function while holding mu_
// (self-deadlock on a non-recursive mutex) must be rejected by
// -Werror=thread-safety.
#include "src/util/mutex.h"

namespace fixture {

class Stats {
 public:
  uint64_t Total() EXCLUDES(mu_) {
    invfs::MutexLock lock(mu_);
    return a_ + b_;
  }

  uint64_t Deadlock() {
    invfs::MutexLock lock(mu_);
    return Total();  // Total EXCLUDES(mu_) but mu_ is held: TSA error
  }

 private:
  invfs::Mutex mu_;
  uint64_t a_ GUARDED_BY(mu_) = 0;
  uint64_t b_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Stats s;
  return static_cast<int>(s.Deadlock());
}
