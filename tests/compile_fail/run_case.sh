#!/usr/bin/env bash
# Compile-fail harness for the thread safety annotations.
#
#   run_case.sh <repo-root> <case.cc> {fail|pass}
#
# `fail` cases must die with a -Wthread-safety diagnostic (any other compile
# error is a broken fixture, reported as failure); `pass` cases must compile
# clean. The analysis only exists in clang, so without clang++ on PATH every
# case exits 77 — ctest's skip code — rather than silently passing.
set -u

root="$1"
src="$2"
expect="$3"
CXX="${INVFS_CLANGXX:-clang++}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "SKIP: $CXX not found (thread safety analysis requires clang)" >&2
  exit 77
fi

out=$("$CXX" -std=c++20 -fsyntax-only -I"$root" \
      -Wthread-safety -Werror=thread-safety "$src" 2>&1)
status=$?

case "$expect" in
  pass)
    if [ $status -eq 0 ]; then
      exit 0
    fi
    echo "FAIL: expected $src to compile clean:" >&2
    echo "$out" >&2
    exit 1
    ;;
  fail)
    if [ $status -ne 0 ] && echo "$out" | grep -q "thread-safety"; then
      exit 0
    fi
    echo "FAIL: expected a thread-safety error from $src (status=$status):" >&2
    echo "$out" >&2
    exit 1
    ;;
  *)
    echo "usage: run_case.sh <repo-root> <case.cc> {fail|pass}" >&2
    exit 2
    ;;
esac
