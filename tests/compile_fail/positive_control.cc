// Positive control: fully annotated, correctly locked code. Must compile
// cleanly under -Werror=thread-safety — proves the harness flags real
// violations, not the annotation vocabulary itself.
#include "src/util/mutex.h"

namespace fixture {

class Counter {
 public:
  void Bump() EXCLUDES(mu_) {
    invfs::MutexLock lock(mu_);
    BumpLocked();
  }

  int Get() const EXCLUDES(mu_) {
    invfs::MutexLock lock(mu_);
    return n_;
  }

 private:
  void BumpLocked() REQUIRES(mu_) { ++n_; }

  mutable invfs::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Counter c;
  c.Bump();
  return c.Get() == 1 ? 0 : 1;
}
