// compile-fail case: calling a REQUIRES(mu_) function without holding the
// mutex must be rejected by -Werror=thread-safety.
#include "src/util/mutex.h"

namespace fixture {

class Log {
 public:
  void Append() { AppendLocked(); }  // caller holds nothing: TSA error

 private:
  void AppendLocked() REQUIRES(mu_) { ++entries_; }

  invfs::Mutex mu_;
  int entries_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Log log;
  log.Append();
  return 0;
}
