// compile-fail case: reading a GUARDED_BY field without holding its mutex
// must be rejected by -Werror=thread-safety.
#include "src/util/mutex.h"

namespace fixture {

class Counter {
 public:
  int Racy() { return n_; }  // no lock: TSA error

 private:
  invfs::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Counter c;
  return c.Racy();
}
