// compile-fail case: locking a mutex and returning without releasing it must
// be rejected by -Werror=thread-safety (capability held at end of function).
#include "src/util/mutex.h"

namespace fixture {

class Leaky {
 public:
  void LockAndLeak() {
    mu_.lock();
    ++n_;
    // missing mu_.unlock(): TSA error
  }

 private:
  invfs::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Leaky l;
  l.LockAndLeak();
  return 0;
}
