// Integration tests: the benchmark harness — data integrity through every
// FileApi, and the paper's shape invariants on a scaled-down workload.

#include <gtest/gtest.h>

#include <cstring>

#include "src/harness/paper_benchmark.h"
#include "src/harness/worlds.h"
#include "src/util/random.h"

namespace invfs {
namespace {

// Write a pseudorandom pattern through an API, read it back, verify.
void RoundtripThrough(FileApi& api) {
  SCOPED_TRACE(std::string(api.name()));
  ASSERT_TRUE(api.Begin().ok());
  auto fd = api.Creat("/integrity.bin");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  Rng rng(99);
  std::vector<std::byte> data(100'000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.Uniform(256));
  }
  ASSERT_TRUE(api.Write(*fd, data).ok());
  ASSERT_TRUE(api.Seek(*fd, 0, Whence::kSet).ok());
  std::vector<std::byte> back(data.size());
  int64_t done = 0;
  while (done < static_cast<int64_t>(back.size())) {
    auto n = api.Read(*fd, std::span(back).subspan(static_cast<size_t>(done)));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0);
    done += *n;
  }
  EXPECT_EQ(back, data);
  ASSERT_TRUE(api.Close(*fd).ok());
  ASSERT_TRUE(api.Commit().ok());
}

TEST(Harness, DataIntegrityThroughAllThreeConfigurations) {
  auto inv = InversionWorld::Create();
  ASSERT_TRUE(inv.ok());
  RoundtripThrough((*inv)->local_api());
  auto inv2 = InversionWorld::Create();
  ASSERT_TRUE(inv2.ok());
  RoundtripThrough((*inv2)->remote_api());
  auto nfs = NfsWorld::Create();
  ASSERT_TRUE(nfs.ok());
  RoundtripThrough((*nfs)->api());
}

TEST(Harness, BenchmarkIsDeterministic) {
  PaperBenchParams params;
  params.file_bytes = 1 << 20;  // scaled down for test speed
  params.transfer_bytes = 256 << 10;
  double first = 0;
  for (int run = 0; run < 2; ++run) {
    auto world = InversionWorld::Create();
    ASSERT_TRUE(world.ok());
    auto r = RunPaperBenchmark((*world)->local_api(), (*world)->clock(), params);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (run == 0) {
      first = r->create_file_s;
    } else {
      EXPECT_DOUBLE_EQ(r->create_file_s, first)
          << "simulated time must be exactly reproducible";
    }
  }
}

// The paper's qualitative results, checked as invariants on a scaled run.
class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PaperBenchParams params;
    params.file_bytes = 4 << 20;
    params.transfer_bytes = 1 << 20;
    {
      auto world = InversionWorld::Create();
      ASSERT_TRUE(world.ok());
      auto r = RunPaperBenchmark((*world)->remote_api(), (*world)->clock(), params);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      cs_ = *r;
    }
    {
      auto world = InversionWorld::Create();
      ASSERT_TRUE(world.ok());
      auto r = RunPaperBenchmark((*world)->local_api(), (*world)->clock(), params);
      ASSERT_TRUE(r.ok());
      sp_ = *r;
    }
    {
      auto world = NfsWorld::Create();
      ASSERT_TRUE(world.ok());
      PaperBenchParams nfs_params = params;
      nfs_params.use_transactions = false;
      auto r = RunPaperBenchmark((*world)->api(), (*world)->clock(), nfs_params);
      ASSERT_TRUE(r.ok());
      nfs_ = *r;
    }
  }

  static PaperBenchResult cs_, sp_, nfs_;
};

PaperBenchResult ShapeTest::cs_;
PaperBenchResult ShapeTest::sp_;
PaperBenchResult ShapeTest::nfs_;

TEST_F(ShapeTest, Figure3_InversionCreationSlowerThanNfs) {
  EXPECT_GT(cs_.create_file_s, nfs_.create_file_s);
  // Paper: 36% of NFS throughput; accept a generous band around it.
  const double ratio = cs_.create_file_s / nfs_.create_file_s;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(ShapeTest, Figure5_ReadsWithinThirtyToEightyPercentBand) {
  // "Inversion is between 30 and 80 percent as fast as ... NFS."
  const std::pair<double, double> pairs[] = {
      {cs_.read_1mb_single_s, nfs_.read_1mb_single_s},
      {cs_.read_1mb_seq_pages_s, nfs_.read_1mb_seq_pages_s},
      {cs_.read_1mb_rand_pages_s, nfs_.read_1mb_rand_pages_s},
  };
  for (const auto& [inv, nfs] : pairs) {
    const double pct = nfs / inv;
    EXPECT_GT(pct, 0.25);
    EXPECT_LT(pct, 1.0);
  }
}

TEST_F(ShapeTest, Figure6_PrestoMakesNfsWritesFlatAcrossPatterns) {
  // "The NFS measurements show no degradation due to random accesses."
  EXPECT_NEAR(nfs_.write_1mb_rand_pages_s, nfs_.write_1mb_seq_pages_s,
              0.05 * nfs_.write_1mb_seq_pages_s);
  // And NFS beats Inversion on every write pattern.
  EXPECT_LT(nfs_.write_1mb_single_s, cs_.write_1mb_single_s);
  EXPECT_LT(nfs_.write_1mb_seq_pages_s, cs_.write_1mb_seq_pages_s);
  EXPECT_LT(nfs_.write_1mb_rand_pages_s, cs_.write_1mb_rand_pages_s);
}

TEST_F(ShapeTest, Table3_SingleProcessBeatsClientServerEverywhere) {
  EXPECT_LT(sp_.create_file_s, cs_.create_file_s);
  EXPECT_LT(sp_.read_1mb_single_s, cs_.read_1mb_single_s);
  EXPECT_LT(sp_.read_1mb_seq_pages_s, cs_.read_1mb_seq_pages_s);
  EXPECT_LT(sp_.read_1mb_rand_pages_s, cs_.read_1mb_rand_pages_s);
  EXPECT_LT(sp_.write_1mb_single_s, cs_.write_1mb_single_s);
  EXPECT_LT(sp_.write_1mb_seq_pages_s, cs_.write_1mb_seq_pages_s);
  EXPECT_LT(sp_.write_1mb_rand_pages_s, cs_.write_1mb_rand_pages_s);
}

TEST_F(ShapeTest, Table3_SingleProcessReadsBeatEvenNfs) {
  // "as much as seven times better" on reads.
  EXPECT_LT(sp_.read_1mb_single_s, nfs_.read_1mb_single_s);
  EXPECT_LT(sp_.read_1mb_seq_pages_s, nfs_.read_1mb_seq_pages_s);
  EXPECT_GT(nfs_.read_1mb_seq_pages_s / sp_.read_1mb_seq_pages_s, 2.0);
}

TEST_F(ShapeTest, Table3_RandomWriteExceptionPrestoWins) {
  // "The important exception is in random write time, for which ULTRIX NFS
  // using PRESTOserve is fastest, since no disk seeks are required."
  EXPECT_LT(nfs_.write_1mb_rand_pages_s, sp_.write_1mb_rand_pages_s);
}

TEST_F(ShapeTest, RemoteAccessAddsSecondsPerMegabyte) {
  // "remote access adds between three and five seconds to the elapsed time"
  // per 1 MB operation (we accept 1-8 simulated seconds on the scaled run).
  const double delta = cs_.read_1mb_single_s - sp_.read_1mb_single_s;
  EXPECT_GT(delta, 1.0);
  EXPECT_LT(delta, 8.0);
}

}  // namespace
}  // namespace invfs
