// Tests for the unreliable-network fault domain: FaultyTransport determinism,
// retry/timeout/backoff behaviour, the server's duplicate-request cache
// (replay, eviction, loss), session-epoch recovery after connection resets,
// and the client's trust boundary against malformed response frames.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/fault/faulty_transport.h"
#include "src/fault/net_torture.h"
#include "src/harness/worlds.h"
#include "src/net/rpc.h"
#include "src/util/random.h"

namespace invfs {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// Raw request frame in the wire format (see rpc.h): used to impersonate a
// client's retries precisely, seq by seq.
std::vector<std::byte> Frame(uint64_t client_id, uint64_t seq, uint32_t epoch,
                             RpcOp op, const ByteWriter& args) {
  ByteWriter w;
  w.Str("");  // tenant
  w.U64(client_id);
  w.U64(seq);
  w.U32(epoch);
  w.U8(static_cast<uint8_t>(op));
  w.Bytes(args.data());
  return std::vector<std::byte>(w.data());
}

struct DecodedResponse {
  bool ok = false;
  ErrorCode code = ErrorCode::kOk;
  std::string message;
};

DecodedResponse Decode(const std::vector<std::byte>& response) {
  ByteReader r(response);
  DecodedResponse d;
  d.ok = r.U8() != 0;
  if (!d.ok) {
    d.code = static_cast<ErrorCode>(r.U8());
    d.message = r.Str();
  }
  return d;
}

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world = InversionWorld::Create();
    ASSERT_TRUE(world.ok());
    world_ = std::move(*world);
    server_ = std::make_unique<InversionServer>(&world_->fs());
    net_ = std::make_unique<NetModel>(&world_->clock(), NetParams{});
    loop_ = std::make_unique<LoopbackTransport>(server_.get(), net_.get());
    wire_ = std::make_unique<FaultyTransport>(loop_.get(), &world_->clock(),
                                              0xBEEF, &world_->db().metrics());
    RpcClientOptions copts;
    copts.clock = &world_->clock();
    copts.metrics = &world_->db().metrics();
    client_ = std::make_unique<RemoteFileClient>(wire_.get(), copts);
  }

  uint64_t CounterValue(const char* name) {
    return world_->db().metrics().GetCounter(name)->Value();
  }

  std::string ReadAll(const std::string& path) {
    auto fd = client_->p_open(path, OpenMode::kRead);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return {};
    }
    std::vector<std::byte> buf(1 << 16);
    auto n = client_->p_read(*fd, buf);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_TRUE(client_->p_close(*fd).ok());
    if (!n.ok()) {
      return {};
    }
    return std::string(reinterpret_cast<const char*>(buf.data()),
                       static_cast<size_t>(*n));
  }

  std::unique_ptr<InversionWorld> world_;
  std::unique_ptr<InversionServer> server_;
  std::unique_ptr<NetModel> net_;
  std::unique_ptr<LoopbackTransport> loop_;
  std::unique_ptr<FaultyTransport> wire_;
  std::unique_ptr<RemoteFileClient> client_;
};

TEST_F(NetFaultTest, ScheduledFaultFiresAtExactPositionOnce) {
  auto fd = client_->p_creat("/sched.txt");
  ASSERT_TRUE(fd.ok());
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kDropRequest;
  spec.at = 2;  // second exchange after Arm
  wire_->ArmOne(spec);
  const uint64_t retries_before = client_->retries();
  // Exchange 1: untouched. Exchange 2: dropped, retried (exchange 3 succeeds).
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("one")).ok());    // 1
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("two")).ok());    // 2 drop + 3
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("three")).ok());  // 4
  EXPECT_EQ(wire_->faults_fired(), 1u);
  EXPECT_EQ(client_->retries(), retries_before + 1);
  EXPECT_EQ(wire_->exchanges_since_arm(), 4u);
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_EQ(ReadAll("/sched.txt"), "onetwothree");
}

TEST_F(NetFaultTest, DroppedRequestChargesTheTimeoutAndBackoff) {
  auto fd = client_->p_creat("/t.txt");
  ASSERT_TRUE(fd.ok());
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kDropRequest;
  wire_->ArmOne(spec);
  const SimMicros before = world_->clock().Peek();
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("x")).ok());
  const SimMicros elapsed = world_->clock().Peek() - before;
  // At least the full per-attempt deadline plus the first backoff step.
  const RpcRetryPolicy rp;
  EXPECT_GE(elapsed, rp.timeout_us + rp.backoff_base_us);
  EXPECT_EQ(CounterValue("rpc.client.timeouts"), 1u);
}

TEST_F(NetFaultTest, DroppedResponseIsReplayedFromTheDrcNotReExecuted) {
  auto fd = client_->p_creat("/drc.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("base")).ok());
  // The server executes the append, the ack is lost, the retry must replay
  // the cached reply: exactly one "dup?" in the file afterwards.
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kDropResponse;
  wire_->ArmOne(spec);
  auto n = client_->p_write(*fd, AsBytes("dup?"));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 4);
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_EQ(CounterValue("rpc.server.drc_hits"), 1u);
  EXPECT_EQ(ReadAll("/drc.txt"), "basedup?");
}

TEST_F(NetFaultTest, DuplicateDeliveryAppliesTheOpOnce) {
  auto fd = client_->p_creat("/dup.txt");
  ASSERT_TRUE(fd.ok());
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kDuplicateRequest;
  wire_->ArmOne(spec);
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("once")).ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_EQ(CounterValue("rpc.server.drc_hits"), 1u);
  EXPECT_EQ(ReadAll("/dup.txt"), "once");
}

TEST_F(NetFaultTest, TruncatedResponseRetriesUnderTheSameSeqToSuccess) {
  auto fd = client_->p_creat("/trunc.txt");
  ASSERT_TRUE(fd.ok());
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kTruncateResponse;
  wire_->ArmOne(spec);
  // The write executes server-side; the mangled reply must be treated as a
  // lost response (retry, DRC replay), never as a final decode error for an
  // op that was in fact applied.
  auto n = client_->p_write(*fd, AsBytes("whole"));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 5);
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_EQ(ReadAll("/trunc.txt"), "whole");
  EXPECT_GE(CounterValue("rpc.client.corrupt_responses") +
                CounterValue("rpc.client.timeouts"),
            1u);
}

TEST_F(NetFaultTest, ResetMidTransactionAbortsItAndReleasesEverything) {
  ASSERT_TRUE(client_->p_begin().ok());
  auto fd = client_->p_creat("/txn.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("doomed")).ok());
  const uint32_t epoch_before = client_->epoch();
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kReset;
  wire_->ArmOne(spec);
  // The connection dies under the open transaction. The retry announces a
  // new epoch; the server must abort the orphan and say so — not hang, not
  // leak locks, not silently continue the transaction.
  const Status st = client_->p_write(*fd, AsBytes("more")).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kTxnAborted) << st.ToString();
  EXPECT_EQ(client_->epoch(), epoch_before + 1);
  EXPECT_EQ(CounterValue("rpc.server.epoch_bumps"), 1u);
  EXPECT_EQ(world_->db().locks().NumLockedRelations(), 0u);
  EXPECT_EQ(world_->db().txns().ActiveTxnCount(), 0u);
  // The transaction never happened...
  EXPECT_TRUE(client_->stat("/txn.txt").status().IsNotFound());
  // ...and the same stub keeps working in its new session epoch.
  auto fd2 = client_->p_creat("/after.txt");
  ASSERT_TRUE(fd2.ok()) << fd2.status().ToString();
  ASSERT_TRUE(client_->p_close(*fd2).ok());
  EXPECT_TRUE(client_->stat("/after.txt").ok());
}

TEST_F(NetFaultTest, ResetOutsideTransactionIsAbsorbedSilently) {
  NetFaultSpec spec;
  spec.kind = NetFaultSpec::Kind::kReset;
  wire_->ArmOne(spec);
  // No open transaction: the reset costs an epoch bump and a retry, and the
  // op itself (never delivered before the reset) executes exactly once.
  auto fd = client_->p_creat("/quiet.txt");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(client_->p_write(*fd, AsBytes("fine")).ok());
  ASSERT_TRUE(client_->p_close(*fd).ok());
  EXPECT_EQ(ReadAll("/quiet.txt"), "fine");
  EXPECT_EQ(CounterValue("rpc.client.resets"), 1u);
}

TEST_F(NetFaultTest, RateModeIsDeterministicPerSeed) {
  auto run = [&](uint64_t seed) {
    FaultyTransport t(loop_.get(), &world_->clock(), seed);
    NetFaultRates rates;
    rates.drop_request = 0.3;
    rates.truncate = 0.2;
    t.ArmRates(rates);
    RpcClientOptions copts;
    copts.clock = &world_->clock();
    RemoteFileClient c(&t, copts);
    for (int i = 0; i < 10; ++i) {
      (void)c.stat("/nope" + std::to_string(i));
    }
    return t.faults_fired();
  };
  const uint64_t a = run(0xA11CE);
  const uint64_t b = run(0xA11CE);
  EXPECT_EQ(a, b) << "same seed, same draws";
  EXPECT_GT(a, 0u) << "30% drop over >=20 exchanges should fire";
}

// ---- duplicate-request cache bounds (manual frames) -------------------------

class DrcBoundsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world = InversionWorld::Create();
    ASSERT_TRUE(world.ok());
    world_ = std::move(*world);
    RpcServerOptions sopts;
    sopts.drc_capacity = 1;  // pathological: every new reply evicts the last
    sopts.max_clients = 2;
    server_ = std::make_unique<InversionServer>(&world_->fs(), sopts);
  }

  std::unique_ptr<InversionWorld> world_;
  std::unique_ptr<InversionServer> server_;
};

TEST_F(DrcBoundsTest, EvictedRetryFailsCrisplyInsteadOfReExecuting) {
  ByteWriter creat;
  creat.Str("/e.txt");
  creat.U8(kDeviceMagneticDisk);
  creat.Str("root");   // owner
  creat.Str("file");   // type
  creat.U8(0);         // compressed
  creat.U8(1);         // keep_history
  auto r1 = Decode(server_->Handle(Frame(9, 1, 1, RpcOp::kCreat, creat)));
  ASSERT_TRUE(r1.ok) << r1.message;
  const std::vector<std::byte> replay =
      server_->Handle(Frame(9, 1, 1, RpcOp::kCreat, creat));
  // (That second delivery of seq 1 was a replay — same fd, no AlreadyExists.)
  ByteReader fd_reader(replay);
  ASSERT_EQ(fd_reader.U8(), 1u);
  const int fd = static_cast<int>(fd_reader.U32());

  ByteWriter w1;
  w1.U32(static_cast<uint32_t>(fd));
  w1.Blob(AsBytes("aa"));
  ASSERT_TRUE(Decode(server_->Handle(Frame(9, 2, 1, RpcOp::kWrite, w1))).ok);
  // Capacity 1: caching seq 2's reply evicted seq 1's; caching seq 3's
  // evicts seq 2's.
  ByteWriter w2;
  w2.U32(static_cast<uint32_t>(fd));
  w2.Blob(AsBytes("bb"));
  ASSERT_TRUE(Decode(server_->Handle(Frame(9, 3, 1, RpcOp::kWrite, w2))).ok);
  EXPECT_EQ(server_->drc_entries(), 1u);

  // A retry of seq 2 now finds no cached reply. Silent re-execution would
  // append "aa" again; the server must refuse instead.
  auto retry = Decode(server_->Handle(Frame(9, 2, 1, RpcOp::kWrite, w1)));
  ASSERT_FALSE(retry.ok);
  EXPECT_EQ(retry.code, ErrorCode::kInternal) << retry.message;
  EXPECT_NE(retry.message.find("evicted"), std::string::npos) << retry.message;

  // Close via a fresh seq, then prove the file holds exactly one "aa".
  ByteWriter cl;
  cl.U32(static_cast<uint32_t>(fd));
  ASSERT_TRUE(Decode(server_->Handle(Frame(9, 4, 1, RpcOp::kClose, cl))).ok);
  auto check = world_->session().p_open("/e.txt", OpenMode::kRead);
  ASSERT_TRUE(check.ok());
  std::vector<std::byte> buf(64);
  auto n = world_->session().p_read(*check, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()),
                        static_cast<size_t>(*n)),
            "aabb");
  ASSERT_TRUE(world_->session().p_close(*check).ok());
}

TEST_F(DrcBoundsTest, StaleEpochFramesAreRejected) {
  ByteWriter args;
  args.Str("/");
  args.U64(kTimestampNow);
  ASSERT_TRUE(Decode(server_->Handle(Frame(5, 1, 3, RpcOp::kReaddir, args))).ok);
  auto stale = Decode(server_->Handle(Frame(5, 2, 2, RpcOp::kReaddir, args)));
  ASSERT_FALSE(stale.ok);
  EXPECT_EQ(stale.code, ErrorCode::kInvalidArgument);
  EXPECT_NE(stale.message.find("stale"), std::string::npos) << stale.message;
}

TEST_F(DrcBoundsTest, ClientTableIsBounded) {
  ByteWriter args;
  args.Str("/");
  args.U64(kTimestampNow);
  ASSERT_TRUE(Decode(server_->Handle(Frame(1, 1, 1, RpcOp::kReaddir, args))).ok);
  ASSERT_TRUE(Decode(server_->Handle(Frame(2, 1, 1, RpcOp::kReaddir, args))).ok);
  auto third = Decode(server_->Handle(Frame(3, 1, 1, RpcOp::kReaddir, args)));
  ASSERT_FALSE(third.ok);
  EXPECT_EQ(third.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(server_->num_clients(), 2u);
}

// ---- client trust boundary --------------------------------------------------

// Transport returning attacker-controlled response frames.
class EvilTransport final : public Transport {
 public:
  explicit EvilTransport(std::vector<std::vector<std::byte>> responses)
      : responses_(std::move(responses)) {}

  Result<std::vector<std::byte>> RoundTrip(std::span<const std::byte> /*req*/,
                                           SimMicros /*timeout_us*/) override {
    if (i_ >= responses_.size()) {
      return Status::IoError("script exhausted");
    }
    return responses_[i_++];
  }

 private:
  std::vector<std::vector<std::byte>> responses_;
  size_t i_ = 0;
};

TEST(ClientTrustBoundaryTest, MalformedResponsesSurfaceStatusNeverCrashOrHang) {
  SimClock clock;
  Rng rng(0x5EED);
  // Random garbage frames of every small size, plus adversarial shapes:
  // truncated headers, truncated error frames, ok-frames with huge length
  // prefixes for blob/list decoders.
  std::vector<std::vector<std::byte>> shapes;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> frame(rng.Uniform(24));
    for (auto& b : frame) {
      b = std::byte{static_cast<uint8_t>(rng.Uniform(256))};
    }
    shapes.push_back(std::move(frame));
  }
  {
    ByteWriter huge_blob;  // p_read: ok + blob claiming 4 GB
    huge_blob.U8(1);
    huge_blob.U32(0xFFFFFFFFu);
    shapes.push_back(std::vector<std::byte>(huge_blob.data()));
    ByteWriter huge_list;  // readdir/query: ok + 4 billion entries
    huge_list.U8(1);
    huge_list.U32(0xFFFFFFFFu);
    huge_list.U32(0xFFFFFFFFu);
    shapes.push_back(std::vector<std::byte>(huge_list.data()));
    ByteWriter half_error;  // error frame cut before the message
    half_error.U8(0);
    shapes.push_back(std::vector<std::byte>(half_error.data()));
    shapes.push_back({});  // empty frame
  }
  // One attempt per call: every response consumed exactly once, every result
  // must be a clean Status (possibly ok for Status-only ops with an ok frame).
  for (size_t start = 0; start < shapes.size(); ++start) {
    std::vector<std::vector<std::byte>> script(shapes.begin() + start,
                                               shapes.end());
    EvilTransport evil(std::move(script));
    RpcClientOptions copts;
    copts.clock = &clock;
    copts.retry.max_attempts = 1;
    RemoteFileClient c(&evil, copts);
    (void)c.p_creat("/x");
    std::vector<std::byte> buf(64);
    (void)c.p_read(3, buf);
    (void)c.readdir("/");
    (void)c.Query("retrieve (f.file) from f in fileatt");
    (void)c.stat("/x");
    (void)c.p_lseek(3, 0, Whence::kSet);
  }
  SUCCEED() << "no crash, no hang, no overallocation";
}

// ---- the sweep itself as a tier-1 gate --------------------------------------

TEST(NetTortureTest, QuickSweepHoldsTheAtMostOnceOracle) {
  NetTortureOptions opt;
  opt.seed = 0x7E57;
  opt.operations = 14;
  opt.max_files = 4;
  opt.schedules_per_kind = 3;
  auto report = RunNetTorture(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& f : report->failures) {
    ADD_FAILURE() << f;
  }
  EXPECT_GT(report->recorded_exchanges, 0u);
  EXPECT_GT(report->faults_fired, 0u);
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace invfs
