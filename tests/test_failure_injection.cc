// Failure injection: media corruption surfacing through the full stack, and
// conflicting sessions under 2PL.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/buffer/buffer_pool.h"
#include "src/check/checker.h"
#include "src/fault/fault_device.h"
#include "src/inversion/inv_fs.h"

namespace invfs {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  void MakeFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  // Post-condition for tests that did not deliberately corrupt the image:
  // whatever the failure scenario did, the stable image must verify clean.
  void ExpectImageClean() {
    ASSERT_TRUE(db_->FlushCaches().ok());
    auto report = CheckImage(env_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << report->ToString();
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

TEST_F(FailureTest, MediaCorruptionDetectedOnRead) {
  MakeFile("/victim.dat", std::string(1000, 'v'));
  ASSERT_TRUE(db_->FlushCaches().ok());

  // Corrupt a byte in the middle of every block of the chunk table on stable
  // storage — the page self-identification check must catch it.
  const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
  auto oid = fs_->ResolvePath("/victim.dat", snap);
  ASSERT_TRUE(oid.ok());
  auto* store = static_cast<MemBlockStore*>(env_.disk_store.get());
  auto table = db_->catalog().GetTable("inv" + std::to_string(*oid));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(store->CorruptByte((*table)->oid, 0, 14).ok());  // self-ident field

  auto fd = s_->p_open("/victim.dat", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(100);
  auto n = s_->p_read(*fd, buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kCorruption);
}

TEST_F(FailureTest, ChunkSelfIdentMismatchDetected) {
  // Corrupt the *record-level* self identifier (the reserved field the paper
  // describes), not the page header: flip bytes later in the page.
  MakeFile("/victim2.dat", std::string(1000, 'w'));
  ASSERT_TRUE(db_->FlushCaches().ok());
  const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
  auto oid = fs_->ResolvePath("/victim2.dat", snap);
  ASSERT_TRUE(oid.ok());
  auto table = db_->catalog().GetTable("inv" + std::to_string(*oid));
  ASSERT_TRUE(table.ok());
  auto* store = static_cast<MemBlockStore*>(env_.disk_store.get());
  // The tuple sits at the end of the page; its selfid int8 lives after the
  // chunkno and the 1004-byte data column. Flip a byte well inside the tuple
  // body region. Find it by trying offsets until the read fails.
  bool detected = false;
  for (uint32_t off = kPageSize - 40; off > kPageSize - 1100 && !detected; --off) {
    ASSERT_TRUE(store->CorruptByte((*table)->oid, 0, off).ok());
    auto fd = s_->p_open("/victim2.dat", OpenMode::kRead);
    ASSERT_TRUE(fd.ok());
    std::vector<std::byte> buf(1000);
    auto n = s_->p_read(*fd, buf);
    if (!n.ok()) {
      detected = true;
      EXPECT_EQ(n.status().code(), ErrorCode::kCorruption);
    } else if (std::memcmp(buf.data(), std::string(1000, 'w').data(), 1000) != 0) {
      // Flipped a data byte: reads succeed with wrong content — that is the
      // one corruption class self-identification cannot catch (the paper
      // reserves space for block tags, not content checksums). Restore it.
      ASSERT_TRUE(store->CorruptByte((*table)->oid, 0, off).ok());
    } else {
      ASSERT_TRUE(store->CorruptByte((*table)->oid, 0, off).ok());  // restore
    }
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(db_->FlushCaches().ok());
  }
  EXPECT_TRUE(detected) << "corrupting metadata bytes must eventually be caught";
}

TEST_F(FailureTest, TwoSessionsWriteSameFileSerializeUnderLocks) {
  MakeFile("/contended.dat", "seed");
  auto s2_or = fs_->NewSession();
  ASSERT_TRUE(s2_or.ok());
  InvSession& s2 = **s2_or;

  ASSERT_TRUE(s_->p_begin().ok());
  auto fd1 = s_->p_open("/contended.dat", OpenMode::kWrite);
  ASSERT_TRUE(fd1.ok());
  const std::string a = "AAAA";
  ASSERT_TRUE(s_->p_write(*fd1, std::as_bytes(std::span(a.data(), a.size()))).ok());

  // Session 2 tries to write the same file: must block until s1 commits.
  std::atomic<bool> s2_done{false};
  std::thread t([&] {
    ASSERT_TRUE(s2.p_begin().ok());
    auto fd2 = s2.p_open("/contended.dat", OpenMode::kWrite);
    ASSERT_TRUE(fd2.ok()) << fd2.status().ToString();
    const std::string b = "BB";
    ASSERT_TRUE(s2.p_write(*fd2, std::as_bytes(std::span(b.data(), b.size()))).ok());
    ASSERT_TRUE(s2.p_close(*fd2).ok());
    ASSERT_TRUE(s2.p_commit().ok());
    s2_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(s2_done) << "second writer must wait for the X lock";
  ASSERT_TRUE(s_->p_close(*fd1).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  t.join();
  EXPECT_TRUE(s2_done);

  // s2 committed last: its bytes overlay s1's.
  auto fd = s_->p_open("/contended.dat", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  char buf[4];
  auto n = s_->p_read(*fd, std::as_writable_bytes(std::span(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 4), "BBAA");
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ExpectImageClean();
}

TEST_F(FailureTest, DeadlockVictimCanRetry) {
  MakeFile("/a.dat", "a");
  MakeFile("/b.dat", "b");
  auto s2_or = fs_->NewSession();
  ASSERT_TRUE(s2_or.ok());
  InvSession& s2 = **s2_or;

  // s1 locks a, s2 locks b, then each goes for the other: one must get a
  // deadlock status rather than hang.
  ASSERT_TRUE(s_->p_begin().ok());
  ASSERT_TRUE(s2.p_begin().ok());
  auto fd_a1 = s_->p_open("/a.dat", OpenMode::kWrite);
  ASSERT_TRUE(fd_a1.ok());
  auto fd_b2 = s2.p_open("/b.dat", OpenMode::kWrite);
  ASSERT_TRUE(fd_b2.ok());

  std::atomic<bool> s1_got_b{false};
  std::thread t([&] {
    auto fd_b1 = s_->p_open("/b.dat", OpenMode::kWrite);
    s1_got_b = fd_b1.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto fd_a2 = s2.p_open("/a.dat", OpenMode::kWrite);
  EXPECT_FALSE(fd_a2.ok());
  EXPECT_TRUE(fd_a2.status().IsDeadlock()) << fd_a2.status().ToString();
  // The victim's transaction was aborted by the deadlock handler; a fresh
  // attempt succeeds once s1 finishes.
  t.join();
  EXPECT_TRUE(s1_got_b);
  ASSERT_TRUE(s_->p_commit().ok());
  auto retry = s2.p_open("/a.dat", OpenMode::kWrite);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  // After the deadlock abort the session fell back to per-op transactions, so
  // the close commits on its own.
  ASSERT_TRUE(s2.p_close(*retry).ok());
  ExpectImageClean();
}

// ---- lying-disk scenarios: torn pages and bit flips -------------------------

// Same stack as FailureTest, but every device is wrapped in a FaultDevice so
// the media can lie: report a successful write while persisting damage.
class CorruptingDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.fault_injector = &injector_;
    auto db = Database::Open(&env_, opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  void MakeFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  // Rewrite `path` in place, but the write-back of its chunk-table page goes
  // through the armed fault: the device reports success while persisting
  // damage. The transaction then commits normally — the caller holds an ack
  // for data the media silently mangled.
  void CommitThroughLyingDisk(const std::string& path, const std::string& data,
                              FaultSpec::Kind kind) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_open(path, OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
    auto oid = fs_->ResolvePath(path, snap);
    ASSERT_TRUE(oid.ok());
    auto table = db_->catalog().GetTable("inv" + std::to_string(*oid));
    ASSERT_TRUE(table.ok());
    injector_.ArmOne({kind, FaultSpec::Op::kWrite, 1});
    ASSERT_TRUE(db_->buffers_ptr()->FlushRelation((*table)->oid).ok())
        << "the lying disk must report success";
    EXPECT_EQ(injector_.faults_fired(), 1u);
    injector_.Disarm();
    ASSERT_TRUE(s_->p_commit().ok());
    // Drop the clean cached copy so the next read goes back to the media.
    ASSERT_TRUE(db_->FlushCaches().ok());
  }

  // The damaged page must be caught by page verification on the read path,
  // and the offline checker must flag it — with every violation anchored to
  // (or fallout of) the damaged page, so `invfs_check --tolerate-quarantined`
  // accepts the rest of the image.
  void ExpectDamageDetected(const std::string& path) {
    auto fd = s_->p_open(path, OpenMode::kRead);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    std::vector<std::byte> buf(100);
    auto n = s_->p_read(*fd, buf);
    ASSERT_FALSE(n.ok()) << "damaged page served as good data";
    EXPECT_EQ(n.status().code(), ErrorCode::kCorruption) << n.status().ToString();

    auto report = CheckImage(env_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->ok()) << "checker must see the damage";
    EXPECT_TRUE(report->OnlyQuarantined()) << report->ToString();
  }

  StorageEnv env_;
  FaultInjector injector_;  // outlives db_'s FaultDevices (declared first)
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

TEST_F(CorruptingDiskTest, TornPageWriteDetectedAndQuarantined) {
  MakeFile("/torn.dat", std::string(2000, 't'));
  ASSERT_TRUE(db_->FlushCaches().ok());
  CommitThroughLyingDisk("/torn.dat", std::string(2000, 'T'),
                         FaultSpec::Kind::kTornWrite);
  ExpectDamageDetected("/torn.dat");
}

TEST_F(CorruptingDiskTest, BitFlipDetectedAndQuarantined) {
  MakeFile("/flip.dat", std::string(2000, 'f'));
  ASSERT_TRUE(db_->FlushCaches().ok());
  CommitThroughLyingDisk("/flip.dat", std::string(2000, 'F'),
                         FaultSpec::Kind::kBitFlip);
  ExpectDamageDetected("/flip.dat");
}

}  // namespace
}  // namespace invfs
