// Unit tests: the shared LRU buffer pool.

#include <gtest/gtest.h>

#include <thread>

#include "src/buffer/buffer_pool.h"

namespace invfs {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() {
    sw_.Register(kDeviceMagneticDisk,
                 std::make_unique<MagneticDiskDevice>(&store_, &clock_, DiskParams{}));
  }

  void CreateRel(Oid rel) {
    ASSERT_TRUE(sw_.Get(kDeviceMagneticDisk)->CreateRelation(rel).ok());
    sw_.BindRelation(rel, kDeviceMagneticDisk);
  }

  SimClock clock_;
  MemBlockStore store_;
  DeviceSwitch sw_;
};

TEST_F(BufferPoolTest, ExtendPinWriteRead) {
  CreateRel(1);
  BufferPool pool(&sw_, 8, &clock_);
  uint32_t block = 0;
  {
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(block, 0u);
    ref->data()[100] = std::byte{0x42};
    ref->MarkDirty();
  }
  EXPECT_EQ(*pool.NumBlocks(1), 1u);
  {
    auto ref = pool.Pin(1, 0);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[100], std::byte{0x42});
  }
  EXPECT_GE(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEviction) {
  CreateRel(1);
  BufferPool pool(&sw_, 2, &clock_);  // tiny pool forces eviction
  for (int i = 0; i < 6; ++i) {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->data()[0] = std::byte{static_cast<uint8_t>(i + 1)};
    ref->MarkDirty();
  }
  for (uint32_t b = 0; b < 6; ++b) {
    auto ref = pool.Pin(1, b);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], std::byte{static_cast<uint8_t>(b + 1)}) << b;
  }
}

TEST_F(BufferPoolTest, EvictionAndWriteBackCounters) {
  CreateRel(1);
  BufferPool pool(&sw_, 2, &clock_);  // tiny pool forces eviction
  EXPECT_EQ(pool.evictions(), 0u);
  EXPECT_EQ(pool.write_backs(), 0u);
  for (int i = 0; i < 6; ++i) {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  // 6 extends through 2 frames: 4 frames were reclaimed, each flushing its
  // dirty page on the way out.
  EXPECT_EQ(pool.evictions(), 4u);
  EXPECT_GE(pool.write_backs(), 4u);
  const uint64_t misses_before = pool.misses();
  auto ref = pool.Pin(1, 0);  // long evicted: a fresh device read
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST_F(BufferPoolTest, SharedRegistryExposesBufferCounters) {
  // When the pool is handed an external registry (as Database does), the same
  // counters are visible through registry snapshots under buffer.* names.
  CreateRel(1);
  MetricsRegistry reg;
  BufferPool pool(&sw_, 8, &clock_, CpuParams{}, /*partitions=*/0, &reg);
  uint32_t block = 0;
  auto ref = pool.Extend(1, &block);
  ASSERT_TRUE(ref.ok());
  ref->Release();
  auto again = pool.Pin(1, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(reg.GetCounter("buffer.hits")->Value(), pool.hits());
  EXPECT_GE(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  CreateRel(1);
  BufferPool pool(&sw_, 2, &clock_);
  uint32_t b0 = 0, b1 = 0;
  auto r0 = pool.Extend(1, &b0);
  auto r1 = pool.Extend(1, &b1);
  ASSERT_TRUE(r0.ok() && r1.ok());
  // Both frames pinned: a third allocation must fail, not evict.
  uint32_t b2 = 0;
  auto r2 = pool.Extend(1, &b2);
  EXPECT_EQ(r2.status().code(), ErrorCode::kResourceExhausted);
  r0->Release();
  auto r3 = pool.Extend(1, &b2);
  EXPECT_TRUE(r3.ok());
}

TEST_F(BufferPoolTest, FlushRelationWritesDirtyPagesInOrder) {
  CreateRel(1);
  BufferPool pool(&sw_, 16, &clock_);
  for (int i = 0; i < 5; ++i) {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  EXPECT_EQ(*store_.NumBlocks(1), 0u) << "nothing on device before flush";
  ASSERT_TRUE(pool.FlushRelation(1).ok());
  EXPECT_EQ(*store_.NumBlocks(1), 5u);
}

TEST_F(BufferPoolTest, OutOfOrderEvictionPreservesDeviceContiguity) {
  // Extended blocks may be evicted out of order; the pool must write lower
  // pending blocks first so the device never sees a hole.
  CreateRel(1);
  BufferPool pool(&sw_, 4, &clock_);
  uint32_t blocks[3];
  auto r0 = pool.Extend(1, &blocks[0]);
  auto r1 = pool.Extend(1, &blocks[1]);
  auto r2 = pool.Extend(1, &blocks[2]);
  ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
  r2->MarkDirty();
  r0->MarkDirty();
  r1->MarkDirty();
  // Touch 0 and 1 so block 2's frame is the LRU victim.
  r0->Release();
  r1->Release();
  r2->Release();
  {
    auto again = pool.Pin(1, 0);
    ASSERT_TRUE(again.ok());
  }
  {
    auto again = pool.Pin(1, 1);
    ASSERT_TRUE(again.ok());
  }
  // Force an eviction: fill the pool with another relation.
  CreateRel(2);
  for (int i = 0; i < 4; ++i) {
    uint32_t nb = 0;
    auto ref = pool.Extend(2, &nb);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  // Whatever the order, the store must now hold blocks without holes.
  auto n = store_.NumBlocks(1);
  ASSERT_TRUE(n.ok());
  std::vector<std::byte> out(kPageSize);
  for (uint32_t b = 0; b < *n; ++b) {
    EXPECT_TRUE(store_.Read(1, b, out).ok()) << "hole at block " << b;
  }
}

TEST_F(BufferPoolTest, NumBlocksIncludesPendingExtensions) {
  CreateRel(1);
  BufferPool pool(&sw_, 8, &clock_);
  uint32_t block = 0;
  auto ref = pool.Extend(1, &block);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(*pool.NumBlocks(1), 1u);
  EXPECT_EQ(*store_.NumBlocks(1), 0u);  // not on the device yet
}

TEST_F(BufferPoolTest, FlushAndInvalidateDropsCleanState) {
  CreateRel(1);
  BufferPool pool(&sw_, 8, &clock_);
  {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());
  const uint64_t misses_before = pool.misses();
  {
    auto ref = pool.Pin(1, 0);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(pool.misses(), misses_before + 1) << "pin after invalidate must re-read";
}

TEST_F(BufferPoolTest, DiscardAllLosesDirtyData) {
  // Crash semantics: unflushed data vanishes.
  CreateRel(1);
  BufferPool pool(&sw_, 8, &clock_);
  {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  pool.DiscardAll();
  EXPECT_EQ(*store_.NumBlocks(1), 0u);
  EXPECT_EQ(*pool.NumBlocks(1), 0u);
}

TEST_F(BufferPoolTest, DiscardRelationOnlyAffectsThatRelation) {
  CreateRel(1);
  CreateRel(2);
  BufferPool pool(&sw_, 8, &clock_);
  uint32_t b = 0;
  {
    auto r1 = pool.Extend(1, &b);
    ASSERT_TRUE(r1.ok());
    r1->data()[0] = std::byte{0xAA};
    r1->MarkDirty();
  }
  {
    auto r2 = pool.Extend(2, &b);
    ASSERT_TRUE(r2.ok());
    r2->MarkDirty();
  }
  pool.DiscardRelation(2);
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(*store_.NumBlocks(1), 1u);
  EXPECT_EQ(*store_.NumBlocks(2), 0u);
}

TEST_F(BufferPoolTest, LruEvictsColdestFrame) {
  CreateRel(1);
  BufferPool pool(&sw_, 3, &clock_);
  for (int i = 0; i < 3; ++i) {
    uint32_t block = 0;
    auto ref = pool.Extend(1, &block);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  // Touch blocks 1 and 2; block 0 becomes LRU.
  (void)*pool.Pin(1, 1);
  (void)*pool.Pin(1, 2);
  const uint64_t misses_before = pool.misses();
  CreateRel(3);
  uint32_t nb = 0;
  ASSERT_TRUE(pool.Extend(3, &nb).ok());  // evicts block 0
  (void)*pool.Pin(1, 1);                  // still cached
  (void)*pool.Pin(1, 2);                  // still cached
  EXPECT_EQ(pool.misses(), misses_before);
  (void)*pool.Pin(1, 0);  // must re-read
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

// Regression: releasing a PageRef on a thread other than the one that pinned
// it used to decrement the *releasing* thread's pin counter, driving it
// negative and leaving the pinning thread's counter stuck positive (which the
// lock manager reads to police latch-then-lock ordering).
TEST_F(BufferPoolTest, CrossThreadReleaseBalancesPinAccounting) {
  CreateRel(1);
  BufferPool pool(&sw_, 2, &clock_);
  {
    auto ref = pool.Extend(1, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  EXPECT_EQ(BufferPool::ThreadPinCount(), 0);
  auto ref = pool.Pin(1, 0);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(BufferPool::ThreadPinCount(), 1);

  std::thread other([&] {
    EXPECT_EQ(BufferPool::ThreadPinCount(), 0)
        << "a fresh thread holds no pins";
    ref->Release();
    EXPECT_EQ(BufferPool::ThreadPinCount(), 0)
        << "releasing a foreign pin must not charge the releasing thread";
  });
  other.join();

  EXPECT_EQ(BufferPool::ThreadPinCount(), 0)
      << "the pinning thread must be debited by the remote release";
  // And the frame is genuinely unpinned: invalidation refuses pinned frames.
  EXPECT_TRUE(pool.FlushAndInvalidate().ok());
}

TEST_F(BufferPoolTest, PartitionCountRoundsUpToPowerOfTwo) {
  CreateRel(1);
  BufferPool defaulted(&sw_, 4, &clock_);
  EXPECT_EQ(defaulted.num_partitions(), kDefaultPoolPartitions);
  BufferPool single(&sw_, 4, &clock_, CpuParams{}, 1);
  EXPECT_EQ(single.num_partitions(), 1u);
  BufferPool odd(&sw_, 4, &clock_, CpuParams{}, 3);
  EXPECT_EQ(odd.num_partitions(), 4u);
}

// Forwards to an NvramDevice but fails every WriteBlock while armed: lets
// the tests below exercise write-back failure on the eviction path.
class FailingWriteDevice final : public DeviceManager {
 public:
  explicit FailingWriteDevice(BlockStore* store) : inner_(store) {}

  std::string_view name() const override { return "failing-write"; }
  Status CreateRelation(Oid rel) override { return inner_.CreateRelation(rel); }
  Status DropRelation(Oid rel) override { return inner_.DropRelation(rel); }
  bool RelationExists(Oid rel) const override { return inner_.RelationExists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return inner_.NumBlocks(rel); }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override {
    return inner_.ReadBlock(rel, block, out);
  }
  Status WriteBlock(Oid rel, uint32_t block, std::span<const std::byte> data) override {
    if (fail_writes.load()) {
      return Status::Internal("injected write failure");
    }
    return inner_.WriteBlock(rel, block, data);
  }

  std::atomic<bool> fail_writes{false};

 private:
  NvramDevice inner_;
};

// Regression: eviction used to unmap the victim *before* the dirty
// write-back, so a failed device write left the page unreachable and its
// data silently lost. The write-back must come first; a failure leaves the
// dirty page mapped and retryable.
TEST(BufferPoolFailureTest, EvictionWriteFailureKeepsDirtyPageReachable) {
  MemBlockStore store;
  SimClock clock;
  DeviceSwitch sw;
  auto owned = std::make_unique<FailingWriteDevice>(&store);
  FailingWriteDevice* dev = owned.get();
  sw.Register(kDeviceNvram, std::move(owned));
  for (Oid rel : {1, 2}) {
    ASSERT_TRUE(dev->CreateRelation(rel).ok());
    sw.BindRelation(rel, kDeviceNvram);
  }

  BufferPool pool(&sw, 4, &clock);
  // Seed rel 1 on the device so a later Pin of it misses and must evict.
  for (int b = 0; b < 4; ++b) {
    auto ref = pool.Extend(1, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());

  // Fill every frame with dirty, unflushed pages of rel 2.
  for (int b = 0; b < 4; ++b) {
    auto ref = pool.Extend(2, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->data()[kPageHeaderSize] = std::byte{static_cast<uint8_t>(b + 1)};
    ref->MarkDirty();
  }

  dev->fail_writes.store(true);
  // The miss forces an eviction whose write-back fails: the Pin reports the
  // error, and the victim's dirty page must still be mapped and dirty.
  EXPECT_FALSE(pool.Pin(1, 0).ok());
  dev->fail_writes.store(false);

  // Retry succeeds and no page was lost.
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());
  for (uint32_t b = 0; b < 4; ++b) {
    auto ref = pool.Pin(2, b);
    ASSERT_TRUE(ref.ok()) << "block " << b;
    EXPECT_EQ(ref->data()[kPageHeaderSize], std::byte{static_cast<uint8_t>(b + 1)})
        << "block " << b;
  }
}

// The mapping is sharded but the frames are shared: a relation hashed to one
// shard must still be able to use every frame in the pool.
TEST_F(BufferPoolTest, ShardedPoolSharesFramesAcrossPartitions) {
  CreateRel(1);
  BufferPool pool(&sw_, 8, &clock_, CpuParams{}, 8);
  std::vector<PageRef> refs;
  for (int i = 0; i < 8; ++i) {
    auto ref = pool.Extend(1, nullptr);
    ASSERT_TRUE(ref.ok()) << "frame " << i << " must be allocatable";
    ref->MarkDirty();
    refs.push_back(std::move(*ref));
  }
  // All 8 frames pinned; a 9th page must fail with every buffer pinned.
  EXPECT_FALSE(pool.Extend(1, nullptr).ok());
  refs.clear();
  EXPECT_TRUE(pool.Extend(1, nullptr).ok());
}

}  // namespace
}  // namespace invfs
