// Unit and stack tests for the fault-injection layer: crash points, the
// FaultDevice decorator, the retry/read-only ErrorPolicyDevice, and the
// graceful-degradation paths they feed (commit-log fail-stop, read-only
// devices surfaced through RPC and the NFS gateway).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/device/device.h"
#include "src/device/error_policy.h"
#include "src/fault/crash_points.h"
#include "src/fault/fault_device.h"
#include "src/inversion/inv_fs.h"
#include "src/net/nfs_gateway.h"
#include "src/net/rpc.h"

namespace invfs {
namespace {

// ---- CrashPointRegistry -----------------------------------------------------

// The registry is a process-wide singleton; every test leaves it disarmed.
struct RegistryGuard {
  ~RegistryGuard() { CrashPointRegistry::Instance().Disarm(); }
};

TEST(CrashPoints, InertWhenNeitherRecordingNorArmed) {
  RegistryGuard guard;
  CrashPointRegistry::Hit("anything");
  EXPECT_FALSE(CrashPointRegistry::Instance().fired());
}

TEST(CrashPoints, RecordingCountsHitsPerPoint) {
  RegistryGuard guard;
  auto& reg = CrashPointRegistry::Instance();
  reg.StartRecording();
  CrashPointRegistry::Hit("alpha");
  CrashPointRegistry::Hit("alpha");
  CrashPointRegistry::Hit("beta");
  CrashPointRegistry::Hit("alpha");
  auto counts = reg.StopRecording();
  EXPECT_EQ(counts["alpha"], 3u);
  EXPECT_EQ(counts["beta"], 1u);
  // Recording stopped: further hits are free and uncounted.
  CrashPointRegistry::Hit("alpha");
  EXPECT_TRUE(reg.StopRecording().empty());
}

TEST(CrashPoints, ArmedCallbackFiresExactlyOnceAtNthOccurrence) {
  RegistryGuard guard;
  auto& reg = CrashPointRegistry::Instance();
  int fired = 0;
  reg.Arm("point", 2, [&fired] { ++fired; });
  CrashPointRegistry::Hit("other");  // different point: does not count
  CrashPointRegistry::Hit("point");  // occurrence 1: below threshold
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(reg.fired());
  CrashPointRegistry::Hit("point");  // occurrence 2: fires
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(reg.fired());
  CrashPointRegistry::Hit("point");  // once only
  EXPECT_EQ(fired, 1);
}

// ---- FaultDevice (device level) ---------------------------------------------

constexpr Oid kRel = 5000;

std::vector<std::byte> FilledPage(char c) {
  return std::vector<std::byte>(kPageSize, std::byte{static_cast<uint8_t>(c)});
}

class FaultDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<FaultDevice>(std::make_unique<NvramDevice>(&store_),
                                         &injector_);
    ASSERT_TRUE(dev_->CreateRelation(kRel).ok());
  }

  MemBlockStore store_;
  FaultInjector injector_;
  std::unique_ptr<FaultDevice> dev_;
};

TEST_F(FaultDeviceTest, TransientErrorFiresOnceThenSameWriteSucceeds) {
  injector_.ArmOne({FaultSpec::Kind::kTransientError, FaultSpec::Op::kWrite, 1});
  const auto page = FilledPage('A');
  Status first = dev_->WriteBlock(kRel, 0, page);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.IsTransientIo());
  // The retry is the next write position: it passes.
  EXPECT_TRUE(dev_->WriteBlock(kRel, 0, page).ok());
  EXPECT_EQ(injector_.faults_fired(), 1u);
  EXPECT_EQ(injector_.writes_since_arm(), 2u);

  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  EXPECT_EQ(std::memcmp(out.data(), page.data(), kPageSize), 0);
}

TEST_F(FaultDeviceTest, CrashHaltsEveryLaterOperation) {
  injector_.ArmOne({FaultSpec::Kind::kCrash, FaultSpec::Op::kWrite, 2});
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('A')).ok());
  Status crash = dev_->WriteBlock(kRel, 1, FilledPage('B'));
  ASSERT_FALSE(crash.ok());
  EXPECT_TRUE(injector_.crashed());
  // The halted write never reached the store, and the frozen image refuses
  // all further traffic — exactly a powered-off machine.
  auto nblocks = dev_->Underlying()->NumBlocks(kRel);
  ASSERT_TRUE(nblocks.ok());
  EXPECT_EQ(*nblocks, 1u);
  std::vector<std::byte> out(kPageSize);
  EXPECT_FALSE(dev_->ReadBlock(kRel, 0, out).ok());
  EXPECT_FALSE(dev_->Sync().ok());
}

TEST_F(FaultDeviceTest, TornWriteKeepsAProperSectorSubsetAndReportsSuccess) {
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('B')).ok());
  injector_.ArmOne({FaultSpec::Kind::kTornWrite, FaultSpec::Op::kWrite, 1});
  // The lying disk: the caller sees success, the media holds a mix.
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('A')).ok());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  size_t new_sectors = 0, old_sectors = 0;
  for (size_t off = 0; off < kPageSize; off += 512) {
    char c = static_cast<char>(out[off]);
    for (size_t i = 0; i < 512; ++i) {
      ASSERT_EQ(static_cast<char>(out[off + i]), c)
          << "sector " << off / 512 << " must be atomic";
    }
    (c == 'A' ? new_sectors : old_sectors) += 1;
  }
  EXPECT_GT(new_sectors, 0u);
  EXPECT_GT(old_sectors, 0u) << "a torn write must lose something";
}

TEST_F(FaultDeviceTest, BitFlipPersistsExactlyOneFlippedBit) {
  injector_.ArmOne({FaultSpec::Kind::kBitFlip, FaultSpec::Op::kWrite, 1});
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('\0')).ok());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  int set_bits = 0;
  for (std::byte b : out) {
    set_bits += __builtin_popcount(static_cast<unsigned>(b));
  }
  EXPECT_EQ(set_bits, 1);
}

// ---- ErrorPolicyDevice ------------------------------------------------------

class ErrorPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<ErrorPolicyDevice>(
        std::make_unique<FaultDevice>(std::make_unique<NvramDevice>(&store_),
                                      &injector_),
        &clock_, DeviceErrorPolicy{}, &metrics_);
    ASSERT_TRUE(dev_->CreateRelation(kRel).ok());
  }

  uint64_t Retries() {
    return metrics_.GetCounter("device.retries", "nvram")->Value();
  }

  MemBlockStore store_;
  FaultInjector injector_;
  SimClock clock_;
  MetricsRegistry metrics_;
  std::unique_ptr<ErrorPolicyDevice> dev_;
};

TEST_F(ErrorPolicyTest, TransientWriteRetriedInvisiblyWithBackoff) {
  injector_.ArmOne({FaultSpec::Kind::kTransientError, FaultSpec::Op::kWrite, 1});
  const SimMicros t0 = clock_.Peek();
  EXPECT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('A')).ok());
  EXPECT_EQ(injector_.faults_fired(), 1u);
  EXPECT_EQ(Retries(), 1u);
  EXPECT_GT(clock_.Peek(), t0) << "backoff must be charged to the clock";
  EXPECT_FALSE(dev_->read_only());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  EXPECT_EQ(static_cast<char>(out[0]), 'A');
}

TEST_F(ErrorPolicyTest, TransientReadRetriedAndDoesNotTripReadOnly) {
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('R')).ok());
  injector_.ArmOne({FaultSpec::Kind::kTransientError, FaultSpec::Op::kRead, 1});
  std::vector<std::byte> out(kPageSize);
  EXPECT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  EXPECT_EQ(static_cast<char>(out[0]), 'R');
  EXPECT_GE(Retries(), 1u);
  EXPECT_FALSE(dev_->read_only());
}

TEST_F(ErrorPolicyTest, PermanentWriteTripsStickyReadOnlyButReadsKeepFlowing) {
  ASSERT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('K')).ok());
  injector_.ArmOne({FaultSpec::Kind::kPermanentError, FaultSpec::Op::kWrite, 1});
  Status failed = dev_->WriteBlock(kRel, 1, FilledPage('X'));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsReadOnlyDevice());
  EXPECT_TRUE(dev_->read_only());
  EXPECT_EQ(metrics_.GetCounter("device.permanent_errors", "nvram")->Value(), 1u);

  // Sticky: later writes/creates/drops are refused without touching the
  // device, even with no fault armed.
  EXPECT_TRUE(dev_->WriteBlock(kRel, 0, FilledPage('Y')).IsReadOnlyDevice());
  EXPECT_TRUE(dev_->CreateRelation(kRel + 1).IsReadOnlyDevice());
  EXPECT_TRUE(dev_->DropRelation(kRel).IsReadOnlyDevice());
  // Degradation, not death: persisted data stays readable.
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(dev_->ReadBlock(kRel, 0, out).ok());
  EXPECT_EQ(static_cast<char>(out[0]), 'K');
}

// ---- full stack: commit log, fail-stop, RPC / NFS surfacing -----------------

// Transport that skips the cost model: frames go straight to the server.
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(InversionServer* server) : server_(server) {}
  Result<std::vector<std::byte>> RoundTrip(
      std::span<const std::byte> request, SimMicros /*timeout_us*/) override {
    return server_->Handle(request);
  }

 private:
  InversionServer* server_;
};

class FaultStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.fault_injector = &injector_;
    auto db = Database::Open(&env_, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  void MakeFile(const std::string& path, const std::string& data) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  // Open a transaction whose data pages are already durable, so the only
  // device write its commit performs is the commit-log page.
  void StageTxnWithFlushedData(const std::string& path) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_open(path, OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    const std::string data = "rewritten";
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(db_->FlushCaches().ok());
  }

  // Declared before db_ so it outlives the FaultDevices that point at it.
  StorageEnv env_;
  FaultInjector injector_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

// Satellite (a): a transient error on the commit-log flush must be absorbed
// by the retry policy — commit succeeds and the log is not poisoned.
TEST_F(FaultStackTest, TransientCommitLogFlushRetriedNotPoisoned) {
  MakeFile("/t.dat", "payload");
  StageTxnWithFlushedData("/t.dat");
  injector_.ArmOne({FaultSpec::Kind::kTransientError, FaultSpec::Op::kWrite, 1});
  ASSERT_TRUE(s_->p_commit().ok());
  EXPECT_EQ(injector_.faults_fired(), 1u);
  EXPECT_FALSE(db_->commit_log().poisoned());
  EXPECT_FALSE(db_->read_only());
  const uint64_t retries =
      db_->metrics().GetCounter("device.retries", "nvram")->Value() +
      db_->metrics().GetCounter("device.retries", "magnetic")->Value() +
      db_->metrics().GetCounter("device.retries", "sony_jukebox")->Value();
  EXPECT_GE(retries, 1u);

  // The commit really took: the new content is durable and visible.
  auto fd = s_->p_open("/t.dat", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(9);
  auto n = s_->p_read(*fd, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::memcmp(buf.data(), "rewritten", 9), 0);
}

// Tentpole degradation: a permanent failure of the commit-log flush poisons
// the log and the whole database goes cleanly fail-stop read-only, which RPC
// clients and the NFS gateway see as kReadOnlyDevice / EROFS.
TEST_F(FaultStackTest, PermanentCommitLogFailureIsFailStopReadOnly) {
  MakeFile("/p.dat", "payload");
  StageTxnWithFlushedData("/p.dat");
  injector_.ArmOne({FaultSpec::Kind::kPermanentError, FaultSpec::Op::kWrite, 1});
  Status commit = s_->p_commit();
  ASSERT_FALSE(commit.ok());
  EXPECT_TRUE(commit.IsReadOnlyDevice()) << commit.ToString();

  EXPECT_TRUE(db_->commit_log().poisoned());
  EXPECT_TRUE(db_->read_only());
  Status begin = db_->Begin().status();
  EXPECT_TRUE(begin.IsReadOnlyDevice());
  EXPECT_EQ(NfsErrnoFor(begin), EROFS);
  EXPECT_EQ(NfsErrnoFor(Status::IoError("dead disk")), EIO);

  // The same refusal crosses the RPC wire with its code intact.
  InversionServer server(fs_.get());
  DirectTransport transport(&server);
  RemoteFileClient client(&transport);
  EXPECT_TRUE(client.p_begin().IsReadOnlyDevice());
  EXPECT_TRUE(client.p_creat("/new.dat").status().IsReadOnlyDevice());

  // And the NFS gateway maps it to EROFS at its trust boundary.
  InvNfsGateway gateway(fs_.get());
  Status creat = gateway.Creat("/nfs.dat").status();
  ASSERT_FALSE(creat.ok());
  EXPECT_EQ(NfsErrnoFor(creat), EROFS);
}

// Tentpole degradation, data-device flavor: a permanent write error trips the
// device read-only mid-transaction; writers fail with kReadOnlyDevice but
// read transactions keep beginning, reading, and committing (their commits
// need no log write — CommitLog::CommitTxnReadOnly).
TEST_F(FaultStackTest, TrippedDataDeviceKeepsReadTransactionsWorking) {
  MakeFile("/keep.dat", "stable");
  ASSERT_TRUE(db_->FlushCaches().ok());

  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_open("/keep.dat", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  const std::string junk = "doomed";
  ASSERT_TRUE(
      s_->p_write(*fd, std::as_bytes(std::span(junk.data(), junk.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  injector_.ArmOne({FaultSpec::Kind::kPermanentError, FaultSpec::Op::kWrite, 1});
  Status flush = db_->FlushCaches();
  ASSERT_FALSE(flush.ok());
  EXPECT_TRUE(flush.IsReadOnlyDevice()) << flush.ToString();
  ASSERT_TRUE(s_->p_abort().ok());

  // The log was never asked to flush, so the database is degraded, not dead.
  EXPECT_FALSE(db_->commit_log().poisoned());
  EXPECT_FALSE(db_->read_only());

  // Reads — including their implicit single-op transactions — still work.
  auto rfd = s_->p_open("/keep.dat", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  std::vector<std::byte> buf(6);
  auto n = s_->p_read(*rfd, buf);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(std::memcmp(buf.data(), "stable", 6), 0);
  ASSERT_TRUE(s_->p_close(*rfd).ok());

  // Teardown must not flush the still-dirty pool against the dead device.
  db_->Crash();
}

}  // namespace
}  // namespace invfs
