// Multi-threaded stress tests for the sharded buffer pool and the
// group-commit path. These are the TSan targets for PR 3's concurrency work:
// scripts/check.sh runs the whole ctest suite under -fsanitize=thread, so any
// data race in pin/evict/flush interleavings or in the commit-log flush
// protocol fails the tier-2 gate here.
//
// Workload-shape note: writers mutate only pages they hold pinned, and each
// writer owns its relation — mirroring the 2PL discipline (X lock per written
// relation) the engine runs under. Eviction write-back and hole-filling of
// *released* pages race freely with everything else, which is the schedule
// being tested.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/catalog/database.h"
#include "src/harness/worlds.h"
#include "src/load/loadgen.h"
#include "src/obs/metrics.h"
#include "src/txn/commit_log.h"
#include "src/util/random.h"

namespace invfs {
namespace {

class MtStressTest : public ::testing::Test {
 protected:
  MtStressTest() {
    sw_.Register(kDeviceMagneticDisk,
                 std::make_unique<MagneticDiskDevice>(&store_, &clock_, DiskParams{}));
  }

  void CreateRel(Oid rel) {
    ASSERT_TRUE(sw_.Get(kDeviceMagneticDisk)->CreateRelation(rel).ok());
    sw_.BindRelation(rel, kDeviceMagneticDisk);
  }

  SimClock clock_;
  MemBlockStore store_;
  DeviceSwitch sw_;
};

TEST_F(MtStressTest, ConcurrentPinEvictFlush) {
  constexpr Oid kSharedRel = 1;
  constexpr uint32_t kSharedBlocks = 64;
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kItersPerThread = 2000;

  CreateRel(kSharedRel);
  // Pool far smaller than the working set: every reader iteration has a real
  // chance of forcing an eviction, and writer extensions contend for frames.
  BufferPool pool(&sw_, 16, &clock_, CpuParams{}, /*partitions=*/8);

  // Seed the shared relation and force it to the device so readers always
  // find valid self-identifying pages.
  for (uint32_t b = 0; b < kSharedBlocks; ++b) {
    auto ref = pool.Extend(kSharedRel, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->data()[kPageHeaderSize] = std::byte{static_cast<uint8_t>(b)};
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());

  std::atomic<int> failures{0};
  auto note_failure = [&](const Status& s) {
    // All-buffers-pinned is a legal transient under extreme contention, but
    // with 16 frames and 6 threads it should never actually happen.
    (void)s;
    failures.fetch_add(1);
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9e3779b9u * (t + 1));
      for (int i = 0; i < kItersPerThread; ++i) {
        const uint32_t b = static_cast<uint32_t>(rng.Next() % kSharedBlocks);
        auto ref = pool.Pin(kSharedRel, b);
        if (!ref.ok()) {
          note_failure(ref.status());
          continue;
        }
        if (ref->data()[kPageHeaderSize] != std::byte{static_cast<uint8_t>(b)}) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    const Oid rel = 100 + t;  // each writer owns its relation (2PL analogue)
    CreateRel(rel);
    threads.emplace_back([&, rel] {
      uint32_t extended = 0;
      for (int i = 0; i < kItersPerThread / 10; ++i) {
        auto ref = pool.Extend(rel, nullptr);
        if (!ref.ok()) {
          note_failure(ref.status());
          continue;
        }
        ref->data()[kPageHeaderSize] = std::byte{0x5A};
        ref->MarkDirty();
        ref->Release();
        ++extended;
        if (extended % 8 == 0) {
          Status s = pool.FlushRelation(rel);
          if (!s.ok()) {
            note_failure(s);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Post-condition: flushing everything must leave hole-free relations whose
  // pages read back clean (checksums verified on the Pin path).
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());
  for (int t = 0; t < kWriters; ++t) {
    const Oid rel = 100 + t;
    auto n = store_.NumBlocks(rel);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, static_cast<uint32_t>(kItersPerThread / 10));
    for (uint32_t b = 0; b < *n; ++b) {
      auto ref = pool.Pin(rel, b);
      ASSERT_TRUE(ref.ok()) << "rel " << rel << " block " << b;
      EXPECT_EQ(ref->data()[kPageHeaderSize], std::byte{0x5A});
    }
  }
}

TEST_F(MtStressTest, CrossThreadPinHandoffUnderLoad) {
  constexpr Oid kRel = 1;
  CreateRel(kRel);
  BufferPool pool(&sw_, 8, &clock_, CpuParams{}, /*partitions=*/4);
  for (int b = 0; b < 4; ++b) {
    auto ref = pool.Extend(kRel, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());

  // Producer pins pages, consumer releases them — the PageRef migration that
  // used to drive the per-thread pin counter negative.
  constexpr int kHandoffs = 1000;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<PageRef> queue;
  bool done = false;

  std::thread consumer([&] {
    int consumed = 0;
    std::unique_lock lock(mu);
    while (consumed < kHandoffs) {
      cv.wait(lock, [&] { return !queue.empty() || done; });
      while (!queue.empty()) {
        PageRef ref = std::move(queue.back());
        queue.pop_back();
        lock.unlock();
        ref.Release();  // release on a thread that never pinned
        ++consumed;
        lock.lock();
      }
      EXPECT_GE(BufferPool::ThreadPinCount(), 0)
          << "cross-thread release corrupted the consumer's pin count";
    }
  });

  for (int i = 0; i < kHandoffs; ++i) {
    auto ref = pool.Pin(kRel, static_cast<uint32_t>(i % 4));
    ASSERT_TRUE(ref.ok());
    std::lock_guard lock(mu);
    queue.push_back(std::move(*ref));
    cv.notify_one();
  }
  {
    std::lock_guard lock(mu);
    done = true;
    cv.notify_one();
  }
  consumer.join();

  EXPECT_EQ(BufferPool::ThreadPinCount(), 0)
      << "producer's pins must be debited when the consumer releases them";
  // Every pin must be returned to the frames: invalidation requires pins==0.
  EXPECT_TRUE(pool.FlushAndInvalidate().ok());
}

// FlushAndInvalidate's pin check must be atomic against the hit path: a Pin
// racing with the invalidation either completes first (and the invalidation
// refuses) or misses afterwards — it can never be handed a frame that is
// being invalidated or remapped under it.
TEST_F(MtStressTest, FlushAndInvalidateRacingPins) {
  constexpr Oid kRel = 1;
  constexpr uint32_t kBlocks = 8;
  CreateRel(kRel);
  BufferPool pool(&sw_, 8, &clock_, CpuParams{}, /*partitions=*/4);
  for (uint32_t b = 0; b < kBlocks; ++b) {
    auto ref = pool.Extend(kRel, nullptr);
    ASSERT_TRUE(ref.ok());
    ref->data()[kPageHeaderSize] = std::byte{static_cast<uint8_t>(b)};
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAndInvalidate().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> corrupt{0};
  std::thread reader([&] {
    Rng rng(0xfeedface);
    while (!stop.load()) {
      const uint32_t b = static_cast<uint32_t>(rng.Next() % kBlocks);
      auto ref = pool.Pin(kRel, b);
      if (ref.ok() &&
          ref->data()[kPageHeaderSize] != std::byte{static_cast<uint8_t>(b)}) {
        corrupt.fetch_add(1);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    const Status s = pool.FlushAndInvalidate();
    if (!s.ok()) {
      // Legal refusal: the reader held a pin at that instant.
      EXPECT_EQ(s.code(), ErrorCode::kInternal);
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_TRUE(pool.FlushAndInvalidate().ok());
}

TEST_F(MtStressTest, GroupCommitConcurrentBeginCommit) {
  NvramDevice dev(&store_);
  auto log_or = CommitLog::Open(&dev);
  ASSERT_TRUE(log_or.ok());
  CommitLog& log = **log_or;

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 200;
  std::atomic<TxnId> next_xid{kBootstrapTxn + 1};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const TxnId xid = next_xid.fetch_add(1);
        if (!log.BeginTxn(xid).ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (xid % 7 == 0) {
          if (!log.AbortTxn(xid).ok()) {
            failures.fetch_add(1);
          }
        } else if (!log.CommitTxn(xid, xid * 10).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(failures.load(), 0);

  const TxnId last = next_xid.load() - 1;
  for (TxnId x = kBootstrapTxn + 1; x <= last; ++x) {
    const TxnStatus st = log.StatusOf(x);
    if (x % 7 == 0) {
      EXPECT_EQ(st, TxnStatus::kAborted) << "xid " << x;
    } else {
      EXPECT_EQ(st, TxnStatus::kCommitted) << "xid " << x;
      EXPECT_EQ(log.CommitTimeOf(x), x * 10) << "xid " << x;
    }
  }
  // Batching sanity: the leader/follower protocol can only merge requests,
  // never lose them — and begins batching under the xid horizon plus abort
  // piggybacking must keep device writes strictly below one per transition
  // (2 * txns here: every txn begins, then commits or aborts).
  EXPECT_LE(log.persist_batches(), log.persist_requests());
  EXPECT_GE(log.persist_requests(), 1u);
  EXPECT_LT(log.device_page_writes(),
            2 * static_cast<uint64_t>(kThreads) * kTxnsPerThread);

  // Reopen: every commit decision must have reached the device.
  auto reopened = CommitLog::Open(&dev);
  ASSERT_TRUE(reopened.ok());
  for (TxnId x = kBootstrapTxn + 1; x <= last; x += 13) {
    if (x % 7 != 0) {
      EXPECT_EQ((*reopened)->StatusOf(x), TxnStatus::kCommitted) << "xid " << x;
    }
  }
}

TEST_F(MtStressTest, ConcurrentTransactionsThroughDatabase) {
  StorageEnv env;
  DatabaseOptions opts;
  opts.buffers = 64;
  auto db_or = Database::Open(&env, opts);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;

  auto setup = db.Begin();
  ASSERT_TRUE(setup.ok());
  auto table = db.catalog().CreateTable(*setup, "t", Schema{{"k", TypeId::kInt4}},
                                        kDeviceMagneticDisk);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.InsertRow(*setup, *table, {Value::Int4(i)}).ok());
  }
  ASSERT_TRUE(db.Commit(*setup).ok());

  constexpr int kReaders = 4;
  constexpr int kScansEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kScansEach; ++i) {
        auto txn = db.Begin();
        if (!txn.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!db.LockTable(*txn, *table, LockMode::kShared).ok()) {
          failures.fetch_add(1);
          continue;
        }
        int count = 0;
        auto it = (*table)->heap->Scan(db.SnapshotFor(*txn));
        while (it.Next()) {
          ++count;
        }
        if (!it.status().ok() || count != 200) {
          failures.fetch_add(1);
        }
        if (!db.Commit(*txn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// 8 threads hammer one registry — striped counters, a shared histogram, and
// the trace ring — while a snapshotter concurrently reads everything. Totals
// must be exact (no lost updates) and every concurrent snapshot internally
// consistent. This is the TSan target for the observability layer.
TEST(MetricsStressTest, ConcurrentIncrementAndSnapshot) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 20000;

  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("stress.counter");
  Histogram* hist = reg.GetHistogram("stress.hist");

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    const uint64_t expected =
        static_cast<uint64_t>(kThreads) * kItersPerThread;
    while (!stop.load(std::memory_order_acquire)) {
      // Mid-run reads must never see torn or overshooting values, and trace
      // snapshots must be well-formed mid-write (seqlock re-check).
      EXPECT_LE(counter->Value(), expected);
      EXPECT_LE(hist->Count(), expected);
      for (const TraceRecord& r : reg.trace().Snapshot()) {
        EXPECT_EQ(r.event, TraceEvent::kLockWait);
      }
      (void)reg.DumpText();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        counter->Add();
        hist->Observe(static_cast<uint64_t>(i));
        if (i % 16 == 0) {
          reg.trace().Record(TraceEvent::kLockWait, t, i);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  const uint64_t expected = static_cast<uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(counter->Value(), expected);
  EXPECT_EQ(hist->Count(), expected);
  EXPECT_EQ(reg.trace().TotalRecorded(),
            static_cast<uint64_t>(kThreads) * (kItersPerThread / 16));
  auto snap = reg.trace().Snapshot();
  EXPECT_EQ(snap.size(), TraceRing::kDefaultCapacity);
}

// 8 threads run nested ScopedSpans (each thread its own trace) while a reader
// concurrently snapshots the span ring. Every published record must be
// internally consistent: a known name, a duration, and for child spans a
// parent from the same trace. This is the TSan target for the span layer.
TEST(MetricsStressTest, SpanStorm) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 4000;

  MetricsRegistry reg;
  SpanRing* spans = &reg.spans();

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SpanRecord& r : spans->Snapshot()) {
        // Names are static literals; a torn read would show garbage here.
        ASSERT_NE(r.name, nullptr);
        const std::string_view name(r.name);
        EXPECT_TRUE(name == "storm.root" || name == "storm.child");
        EXPECT_NE(r.trace_id, 0u);
        EXPECT_NE(r.span_id, 0u);
        if (name == "storm.root") {
          EXPECT_EQ(r.parent_id, 0u);
        } else {
          EXPECT_NE(r.parent_id, 0u);
        }
      }
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        ScopedSpan root(spans, "storm.root", static_cast<uint64_t>(t));
        {
          ScopedSpan child(spans, "storm.child", static_cast<uint64_t>(i));
          child.set_b(root.span_id());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  // Two spans per iteration, none lost from the total count.
  EXPECT_EQ(spans->TotalRecorded(),
            static_cast<uint64_t>(kThreads) * kItersPerThread * 2);
  // Cross-check parent links in the final quiescent snapshot: every child's
  // parent is the root span recorded in its b attribute.
  for (const SpanRecord& r : spans->Snapshot()) {
    if (std::string_view(r.name) == "storm.child") {
      EXPECT_EQ(r.parent_id, r.b);
    }
  }
}

// 8 open-loop load drivers, one per thread, hammer a single shared engine:
// every driver pumps the builtin tenant mix under its own namespace while
// all of them race on the lock manager, buffer pool, commit log, sim clock,
// sampler, and the shared per-tenant histograms. Deadlock victims abort and
// count as errors — what must hold under TSan is that no update is lost:
// the shared load.latency_us{tenant} histograms see exactly one observation
// per arrival executed by any driver.
TEST(LoadStormTest, EightConcurrentDriversShareOneEngine) {
  constexpr int kThreads = 8;

  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  std::vector<std::unique_ptr<LoadGen>> drivers;
  drivers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    LoadGenOptions opt;
    opt.seed = 1000 + static_cast<uint64_t>(t);
    // Long enough that every driver schedules arrivals: builtin mean
    // inter-arrivals run 5-10s, and first arrivals get a stationary phase
    // offset in [0, mean) — a short horizon can miss a whole fleet.
    opt.seconds = 2.0;
    opt.root = "/storm" + std::to_string(t);
    drivers.push_back(std::make_unique<LoadGen>(&world.fs(), opt));
    // Setup serially: it runs DDL (pool files, the shared migration rule),
    // and concurrent redefinition of one rule would just deadlock-abort.
    // The storm under test is the op pumps, not setup.
    const Status setup = drivers.back()->Setup();
    ASSERT_TRUE(setup.ok()) << "driver " << t << ": " << setup.ToString();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (!drivers[t]->Run().ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  uint64_t total_ops = 0;
  for (const auto& d : drivers) {
    const LoadGenReport report = d->Report();
    EXPECT_GT(report.ops, 0u);
    total_ops += report.ops;
  }
  // The registry histograms are shared across drivers; their per-tenant
  // counts must sum to exactly the arrivals executed — no lost updates.
  uint64_t observed = 0;
  for (const TenantLoadStats& t : drivers[0]->Report().tenants) {
    observed +=
        world.db().metrics().GetHistogram("load.latency_us", t.tenant)->Count();
  }
  EXPECT_EQ(observed, total_ops);
}

// NetModel is shared by every client stub of an RPC fleet: its counters are
// relaxed atomics and SimClock::Advance is atomic, so concurrent charges must
// lose neither messages nor bytes nor simulated time.
TEST(LoadStormTest, ConcurrentNetModelChargesAreExact) {
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 5000;
  constexpr uint64_t kBytes = 1024;

  SimClock clock;
  NetModel net(&clock, NetParams{});
  const SimMicros per_charge =
      NetParams{}.per_message_us + (kBytes * NetParams{}.per_kilobyte_us) / 1024;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        net.ChargeMessage(kBytes);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const uint64_t total = static_cast<uint64_t>(kThreads) * kChargesPerThread;
  EXPECT_EQ(net.total_messages(), total);
  EXPECT_EQ(net.total_bytes(), total * kBytes);
  EXPECT_EQ(clock.Peek(), per_charge * total) << "no lost clock advances";
}

}  // namespace
}  // namespace invfs
