// Unit tests: predicate rules engine and rule-driven file migration.

#include <gtest/gtest.h>

#include "src/inversion/inv_fs.h"

namespace invfs {
namespace {

class RulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  void MakeFile(const std::string& path, int64_t bytes) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path);
    ASSERT_TRUE(fd.ok());
    std::vector<std::byte> chunk(kInvChunkSize, std::byte{0x2F});
    int64_t written = 0;
    while (written < bytes) {
      const int64_t n = std::min<int64_t>(bytes - written,
                                          static_cast<int64_t>(chunk.size()));
      ASSERT_TRUE(s_->p_write(*fd, std::span(chunk.data(), static_cast<size_t>(n))).ok());
      written += n;
    }
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

TEST_F(RulesTest, DefineViaPostquelAndList) {
  auto rs = s_->Query(
      "define rule big_files on fileatt where fileatt.size > 1000 do migrate 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(fs_->rules().rules().size(), 1u);
  const Rule& rule = fs_->rules().rules()[0];
  EXPECT_EQ(rule.name, "big_files");
  EXPECT_EQ(rule.table, "fileatt");
  EXPECT_EQ(rule.target_device, kDeviceJukebox);
  EXPECT_NE(rule.predicate_src.find("1000"), std::string::npos);
}

TEST_F(RulesTest, DuplicateAndBadRulesRejected) {
  ASSERT_TRUE(
      s_->Query("define rule r on fileatt where fileatt.size > 1 do migrate 1").ok());
  EXPECT_FALSE(
      s_->Query("define rule r on fileatt where fileatt.size > 2 do migrate 1").ok());
  EXPECT_FALSE(
      s_->Query("define rule r2 on nonsense where x = 1 do migrate 1").ok());
  EXPECT_FALSE(
      s_->Query("define rule r3 on fileatt where fileatt.size > 1 do migrate 7").ok())
      << "unknown device";
}

TEST_F(RulesTest, MigrationRuleMovesMatchingFiles) {
  MakeFile("/big.dat", 100'000);
  MakeFile("/small.dat", 100);
  ASSERT_TRUE(s_->Query("define rule cold on fileatt where fileatt.size > 50000 "
                        "do migrate 2")
                  .ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto fired = fs_->ApplyMigrationRules(*txn);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(*fired, 1);

  auto big = s_->stat("/big.dat");
  auto small = s_->stat("/small.dat");
  ASSERT_TRUE(big.ok() && small.ok());
  EXPECT_EQ(big->device, kDeviceJukebox);
  EXPECT_EQ(small->device, kDeviceMagneticDisk);

  // Contents intact after migration.
  auto fd = s_->p_open("/big.dat", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(64);
  auto n = s_->p_read(*fd, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 64);
  EXPECT_EQ(buf[0], std::byte{0x2F});
  ASSERT_TRUE(s_->p_close(*fd).ok());
}

TEST_F(RulesTest, SecondPassIsIdempotent) {
  MakeFile("/big.dat", 100'000);
  ASSERT_TRUE(s_->Query("define rule cold on fileatt where fileatt.size > 50000 "
                        "do migrate 2")
                  .ok());
  for (int pass = 0; pass < 2; ++pass) {
    auto txn = db_->Begin();
    auto fired = fs_->ApplyMigrationRules(*txn);
    ASSERT_TRUE(fired.ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
    if (pass == 1) {
      EXPECT_EQ(*fired, 0) << "already on the target device";
    }
  }
}

TEST_F(RulesTest, RulesPersistAcrossReopen) {
  ASSERT_TRUE(s_->Query("define rule keeper on fileatt where fileatt.size > 9 "
                        "do migrate 1")
                  .ok());
  s_.reset();
  fs_.reset();
  db_.reset();
  auto db = Database::Open(&env_);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  fs_ = std::make_unique<InversionFs>(db_.get());
  ASSERT_TRUE(fs_->Mount().ok());
  ASSERT_EQ(fs_->rules().rules().size(), 1u);
  EXPECT_EQ(fs_->rules().rules()[0].name, "keeper");
}

TEST_F(RulesTest, DropRule) {
  ASSERT_TRUE(s_->Query("define rule gone on fileatt where fileatt.size > 9 "
                        "do migrate 1")
                  .ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(fs_->rules().DropRule(*txn, "gone").ok());
  EXPECT_TRUE(fs_->rules().DropRule(*txn, "gone").IsNotFound());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_TRUE(fs_->rules().rules().empty());
}

TEST_F(RulesTest, TimePredicateMigratesOnlyColdFiles) {
  MakeFile("/old.dat", 60'000);
  const Timestamp cold_line = db_->Now();
  db_->clock().Advance(3'600'000'000ull);  // one hour passes
  MakeFile("/fresh.dat", 60'000);
  ASSERT_TRUE(s_->Query("define rule stale on fileatt where fileatt.size > 50000 "
                        "and fileatt.mtime < " +
                        std::to_string(cold_line) + " do migrate 2")
                  .ok());
  auto txn = db_->Begin();
  auto fired = fs_->ApplyMigrationRules(*txn);
  ASSERT_TRUE(fired.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(*fired, 1);
  EXPECT_EQ(s_->stat("/old.dat")->device, kDeviceJukebox);
  EXPECT_EQ(s_->stat("/fresh.dat")->device, kDeviceMagneticDisk);
}

}  // namespace
}  // namespace invfs
