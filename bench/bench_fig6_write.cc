// Figure 6: 1 MB write throughput in three access patterns.
//
// Paper: "the effect of the PRESTOserve board used by NFS is dramatic" —
// Inversion gets 43% (single transfer), 31% (sequential pages), 28% (random
// pages) of NFS, and "the NFS measurements show no degradation due to random
// accesses, since the whole 1 MByte write fits in the PRESTOserve cache, and
// is not flushed to disk."

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Figure 6: write throughput (1 MByte) ==\n\n");
  auto results = RunAllConfigs();
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  struct RowSpec {
    const char* name;
    double PaperBenchResult::*m;
    double paper_pct;
  };
  const RowSpec rows[] = {
      {"single 1MB write", &PaperBenchResult::write_1mb_single_s, 43},
      {"sequential page-sized", &PaperBenchResult::write_1mb_seq_pages_s, 31},
      {"random page-sized", &PaperBenchResult::write_1mb_rand_pages_s, 28},
  };
  std::printf("%-24s %14s %14s %18s %10s\n", "pattern", "Inversion c/s",
              "ULTRIX NFS", "measured %of-NFS", "paper");
  for (const RowSpec& row : rows) {
    const double inv = results->inv_cs.*(row.m);
    const double nfs = results->nfs.*(row.m);
    std::printf("%-24s %13.2fs %13.2fs %17.0f%% %9.0f%%\n", row.name, inv, nfs,
                100.0 * nfs / inv, row.paper_pct);
  }
  std::printf("\nshape check 1: NFS shows NO random-write degradation "
              "(random/seq = %.2f, paper 1.00)\n",
              results->nfs.write_1mb_rand_pages_s /
                  results->nfs.write_1mb_seq_pages_s);
  std::printf("shape check 2: even single-process Inversion loses the random-write"
              " test to PRESTOserve (%.2fs vs %.2fs, paper 2.9 vs 1.7)\n",
              results->inv_sp.write_1mb_rand_pages_s,
              results->nfs.write_1mb_rand_pages_s);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
