// Emits BENCH_PR9.json: the open-loop load-observatory numbers.
//
// One fixed scenario (the builtin four-tenant mix, fixed seed) run at fleet
// sizes 100, 1000 and 5000 clients against a fresh world each. Per fleet the
// file embeds the full loadgen report: per-tenant coordinated-omission-correct
// p50/p99/p999, SLO verdicts and error-budget burn, achieved-vs-offered
// throughput, end-of-run lag, timeseries samples captured, and ring drops.
//
// The point of the sweep is the saturation story a closed-loop benchmark
// cannot tell: the simulated server serializes at ~10 ops/s, so the 100-client
// fleet meets every objective while 1000 and 5000 offer far more than service
// capacity — achieved throughput stays flat, intended-start latencies grow to
// the backlog length, and every verdict flips to VIOLATED. The summary block
// calls out the first saturated fleet (end lag beyond kSaturatedLagUs).
//
// Usage: bench_pr9 [output.json]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/load/loadgen.h"

namespace invfs {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kSaturatedLagUs = 500'000;

struct FleetResult {
  size_t clients = 0;
  double wall_ms = 0.0;
  LoadGenReport report;
};

Result<FleetResult> RunFleet(size_t clients, double seconds) {
  StorageEnv env;
  DatabaseOptions dbo;
  dbo.buffers = kBerkeleyBuffers;
  dbo.span_ring_capacity = 1 << 17;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env, dbo));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());

  LoadGenOptions opts;
  opts.seed = 42;
  opts.seconds = seconds;
  ScaleProfiles(&opts.profiles, clients);

  const auto t0 = Clock::now();
  LoadGen gen(&fs, opts);
  INV_RETURN_IF_ERROR(gen.Run());
  FleetResult r;
  r.clients = gen.total_clients();
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  r.report = gen.Report();
  return r;
}

int Run(const char* out_path) {
  // Shorter horizons at larger fleets keep total arrivals comparable; the
  // offered *rate* (what saturation depends on) still scales with the fleet.
  const std::vector<std::pair<size_t, double>> fleets = {
      {100, 2.0}, {1000, 1.0}, {5000, 1.0}};
  std::vector<FleetResult> results;
  for (const auto& [clients, seconds] : fleets) {
    auto r = RunFleet(clients, seconds);
    if (!r.ok()) {
      std::fprintf(stderr, "fleet %zu: %s\n", clients,
                   r.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "fleet %-5zu ops=%llu sim=%.2fs (intended %.2fs) "
                 "end_lag=%.2fs wall=%.0fms\n",
                 r->clients, static_cast<unsigned long long>(r->report.ops),
                 r->report.sim_seconds, r->report.intended_seconds,
                 static_cast<double>(r->report.end_lag_us) / 1e6, r->wall_ms);
    results.push_back(std::move(*r));
  }

  size_t saturation_clients = 0;
  for (const FleetResult& r : results) {
    if (r.report.end_lag_us > kSaturatedLagUs) {
      saturation_clients = r.clients;
      break;
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "open %s failed\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n\"bench\": \"pr9_load_observatory\",\n"
               "\"scenario\": \"builtin mail/analytics/audit/archive mix, "
               "seed 42, coordinated-omission-correct sim latencies\",\n"
               "\"fleets\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    std::fprintf(f, "{\"clients\": %zu, \"wall_ms\": %.3f, \"report\":\n",
                 r.clients, r.wall_ms);
    std::fputs(r.report.DumpJson().c_str(), f);
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "],\n\"saturation\": {\"first_saturated_fleet_clients\": %zu, "
               "\"end_lag_threshold_us\": %llu}\n}\n",
               saturation_clients,
               static_cast<unsigned long long>(kSaturatedLagUs));
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) {
  return invfs::Run(argc > 1 ? argv[1] : "BENCH_PR9.json");
}
