// Emits BENCH_PR3.json: the paper-figure numbers (fig3–fig6 workloads via the
// deterministic simulated-time harness) plus the PR 3 multi-threaded results
// (sharded pool vs single-lock pool at 1/4/8/16 threads, and group-commit
// batching counters). Usage: bench_pr3 [output.json]

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "bench/bench_mt_common.h"

namespace invfs {
namespace {

void AppendPaperConfig(std::string& out, const char* name,
                       const PaperBenchResult& r, bool last) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\n"
                "      \"fig3_create_25mb_s\": %.4f,\n"
                "      \"fig4_read_byte_s\": %.6f,\n"
                "      \"fig4_write_byte_s\": %.6f,\n"
                "      \"fig5_read_1mb_single_s\": %.4f,\n"
                "      \"fig5_read_1mb_seq_pages_s\": %.4f,\n"
                "      \"fig5_read_1mb_rand_pages_s\": %.4f,\n"
                "      \"fig6_write_1mb_single_s\": %.4f,\n"
                "      \"fig6_write_1mb_seq_pages_s\": %.4f,\n"
                "      \"fig6_write_1mb_rand_pages_s\": %.4f\n"
                "    }%s\n",
                name, r.create_file_s, r.read_single_byte_s, r.write_single_byte_s,
                r.read_1mb_single_s, r.read_1mb_seq_pages_s, r.read_1mb_rand_pages_s,
                r.write_1mb_single_s, r.write_1mb_seq_pages_s, r.write_1mb_rand_pages_s,
                last ? "" : ",");
  out += buf;
}

int Main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_PR3.json";

  std::fprintf(stderr, "running paper suite (fig3-fig6)...\n");
  auto paper = RunAllConfigs();
  if (!paper.ok()) {
    std::fprintf(stderr, "%s\n", paper.status().ToString().c_str());
    return 1;
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "{\n  \"host_cores\": %u,\n"
                "  \"note\": \"wall-clock mt_scan speedups require a multi-core"
                " host; on one core threads time-slice and lock contention is"
                " invisible to wall time\",\n"
                "  \"paper_figures\": {\n",
                std::thread::hardware_concurrency());
  std::string out = header;
  AppendPaperConfig(out, "inversion_client_server", paper->inv_cs, false);
  AppendPaperConfig(out, "ultrix_nfs_presto", paper->nfs, false);
  AppendPaperConfig(out, "inversion_single_process", paper->inv_sp, true);
  out += "  },\n  \"mt_scan\": [\n";

  constexpr uint64_t kPinsPerThread = 200000;
  const int kThreads[] = {1, 4, 8, 16};
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    const int n = kThreads[i];
    std::fprintf(stderr, "mt_scan: %d threads...\n", n);
    const MtScanResult base = RunMtScan(n, /*partitions=*/1, kPinsPerThread);
    const MtScanResult shard = RunMtScan(n, /*partitions=*/0, kPinsPerThread);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"global_lock_mpins_per_s\": %.3f, "
                  "\"sharded_mpins_per_s\": %.3f, \"speedup\": %s}%s\n",
                  n, base.mpins_per_s, shard.mpins_per_s,
                  SpeedupJsonField(base.mpins_per_s, shard.mpins_per_s).c_str(),
                  i + 1 < std::size(kThreads) ? "," : "");
    out += buf;
  }

  out += "  ],\n  \"group_commit\": [\n";
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    const int n = kThreads[i];
    std::fprintf(stderr, "group_commit: %d threads...\n", n);
    const MtCommitResult r = RunMtCommit(n, /*txns_per_thread=*/2000);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"txns\": %llu, \"transitions\": %llu, "
                  "\"persist_requests\": %llu, \"persist_batches\": %llu, "
                  "\"device_page_writes\": %llu, \"writes_per_transition\": %.3f, "
                  "\"ktxns_per_s\": %.1f}%s\n",
                  n, static_cast<unsigned long long>(r.txns),
                  static_cast<unsigned long long>(r.transitions),
                  static_cast<unsigned long long>(r.persist_requests),
                  static_cast<unsigned long long>(r.persist_batches),
                  static_cast<unsigned long long>(r.device_page_writes),
                  r.writes_per_transition, r.ktxns_per_s,
                  i + 1 < std::size(kThreads) ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Main(argc, argv); }
