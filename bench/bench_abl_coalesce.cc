// Ablation: sequential-write coalescing.
//
// "Multiple small sequential writes during a single transaction are coalesced
// to maximize the size of the chunk stored in each database record." Without
// coalescing, every small write becomes its own record replacement — a fresh
// tuple version, index entry, and page dirtying per call.

#include "bench/bench_common.h"

namespace invfs {
namespace {

Result<double> RunOne(bool coalesce, int64_t write_size) {
  WorldOptions options;
  options.inv.coalesce_writes = coalesce;
  INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
  FileApi& api = world->local_api();
  SimClock& clock = world->clock();

  const int64_t total = 512 << 10;  // 512 KB of small writes
  std::vector<std::byte> buf(static_cast<size_t>(write_size), std::byte{0x42});
  const SimMicros t0 = clock.Peek();
  INV_RETURN_IF_ERROR(api.Begin());
  INV_ASSIGN_OR_RETURN(int fd, api.Creat("/small_writes.dat"));
  for (int64_t written = 0; written < total; written += write_size) {
    INV_RETURN_IF_ERROR(api.Write(fd, buf).status());
  }
  INV_RETURN_IF_ERROR(api.Close(fd));
  INV_RETURN_IF_ERROR(api.Commit());
  return clock.SecondsSince(t0);
}

int Main() {
  std::printf("== Ablation: write coalescing (512 KB in small sequential writes) ==\n\n");
  std::printf("%-16s %16s %16s %10s\n", "write size", "coalesced", "uncoalesced",
              "speedup");
  for (int64_t size : {256, 1024, 4096}) {
    auto on = RunOne(true, size);
    auto off = RunOne(false, size);
    if (!on.ok() || !off.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!on.ok() ? on.status() : off.status()).ToString().c_str());
      return 1;
    }
    std::printf("%13lldB %15.2fs %15.2fs %9.1fx\n", static_cast<long long>(size),
                *on, *off, *off / *on);
  }
  std::printf("\nexpected shape: speedup grows as writes shrink (more records"
              " coalesced per chunk)\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
