// Ablation: Sony jukebox extent size.
//
// "The Sony jukebox device manager allocates tables in units of extents ...
// The extent size is tunable ... but defaults to 16 pages. The choice of
// extent size involves a tradeoff; for small tables, much of the extent will
// go unused, while large tables would benefit from the overhead reductions in
// transferring very large extents."

#include "bench/bench_common.h"

namespace invfs {
namespace {

Result<std::pair<double, double>> RunOne(uint32_t extent_pages) {
  WorldOptions options;
  options.db.jukebox.extent_pages = extent_pages;
  options.db.jukebox.cache_bytes = 512 << 10;  // small staging cache: force optical I/O
  INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
  SimClock& clock = world->clock();
  auto session_or = world->fs().NewSession();
  INV_RETURN_IF_ERROR(session_or.status());
  InvSession& s = **session_or;

  const int64_t file_bytes = 2LL << 20;
  std::vector<std::byte> payload(kInvChunkSize, std::byte{0x11});

  // Two files written alternately: with small extents their platter layouts
  // interleave page-by-page, so reading one file back seeks constantly; large
  // extents keep runs of each file contiguous. (This is the realistic case —
  // the jukebox holds many tables growing concurrently.)
  CreatOptions creat;
  creat.device = kDeviceJukebox;
  INV_RETURN_IF_ERROR(s.p_begin());
  INV_ASSIGN_OR_RETURN(int fd, s.p_creat("/juke.dat", creat));
  INV_ASSIGN_OR_RETURN(int fd2, s.p_creat("/juke2.dat", creat));
  for (int64_t written = 0; written < file_bytes;
       written += static_cast<int64_t>(payload.size())) {
    INV_RETURN_IF_ERROR(s.p_write(fd, payload).status());
    INV_RETURN_IF_ERROR(s.p_write(fd2, payload).status());
  }
  INV_RETURN_IF_ERROR(s.p_close(fd));
  INV_RETURN_IF_ERROR(s.p_close(fd2));
  const SimMicros t0 = clock.Peek();
  INV_RETURN_IF_ERROR(s.p_commit());
  // Destage everything to the platters.
  INV_RETURN_IF_ERROR(world->db().devices().SyncAll());
  const double destage_s = clock.SecondsSince(t0);

  // Cold sequential read back from optical.
  INV_RETURN_IF_ERROR(world->db().FlushCaches());
  INV_RETURN_IF_ERROR(s.p_begin());
  INV_ASSIGN_OR_RETURN(fd, s.p_open("/juke.dat", OpenMode::kRead));
  const SimMicros t1 = clock.Peek();
  std::vector<std::byte> buf(kInvChunkSize);
  for (;;) {
    INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, buf));
    if (n == 0) {
      break;
    }
  }
  const double read_s = clock.SecondsSince(t1);
  INV_RETURN_IF_ERROR(s.p_close(fd));
  INV_RETURN_IF_ERROR(s.p_commit());
  return std::make_pair(destage_s, read_s);
}

int Main() {
  std::printf("== Ablation: jukebox extent size (2 MB file on optical WORM) ==\n\n");
  std::printf("%14s %16s %22s\n", "extent pages", "destage time", "cold sequential read");
  for (uint32_t extent : {1u, 4u, 16u, 64u}) {
    auto r = RunOne(extent);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%14u %15.2fs %21.2fs\n", extent, r->first, r->second);
  }
  std::printf("\nexpected shape: larger extents keep table pages physically"
              " contiguous on the platter, cutting optical seeks\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
