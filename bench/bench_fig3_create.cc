// Figure 3: elapsed time to create a 25 MB file, Inversion vs ULTRIX NFS.
//
// Paper: Inversion (client/server) achieves about 36% of NFS throughput; the
// cause is B-tree index maintenance — "Btree writes are interleaved with data
// file writes, penalizing Inversion by forcing the disk head to move
// frequently", while NFS "can postpone writing its index until all data
// blocks have been written", staying sequential.

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Figure 3: 25 MByte file creation time ==\n\n");
  auto results = RunAllConfigs();
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  std::printf("paper:    Inversion(c/s) 141.5s   NFS 50.6s   (Inversion = 36%% of NFS"
              " throughput)\n");
  std::printf("measured:\n");
  PrintBar("Inversion client/server", results->inv_cs.create_file_s, 2.5);
  PrintBar("ULTRIX NFS + PRESTOserve", results->nfs.create_file_s, 2.5);
  const double pct =
      100.0 * results->nfs.create_file_s / results->inv_cs.create_file_s;
  std::printf("\nmeasured Inversion throughput = %.0f%% of NFS (paper: 36%%)\n", pct);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
