// Emits BENCH_PR10.json: the unreliable-network fault-domain numbers.
//
// The builtin four-tenant mix (1x, 22 clients, fixed seed) runs entirely over
// the marshalled RPC path — every arrival is a RemoteFileClient call priced
// by the NetModel and stamped with the at-most-once header — at three frame
// loss rates: 0%, 0.1%, and 1% (split evenly between request and response
// legs). Per rate the file embeds the full loadgen report plus the resilience
// stats: goodput (acked ops per sim second), retries per op, the DRC hit
// rate (what fraction of re-sends were answered from the server's
// duplicate-request cache rather than re-executed), and the hard invariant
// that zero op errors leaked through the retry + DRC machinery.
//
// The summary also prices the at-most-once header itself: client id (8) +
// seq (8) + epoch (4) = 20 bytes on every request frame, charged at the
// NetModel's per-kilobyte rate. Against the unfaulted run's total simulated
// time that framing overhead must stay under 5% — the protocol's insurance
// premium is paid in retry behavior, not in steady-state throughput.
//
// Usage: bench_pr10 [output.json]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/load/loadgen.h"

namespace invfs {
namespace {

using Clock = std::chrono::steady_clock;

// Request-frame bytes added by the at-most-once substrate.
constexpr uint64_t kAtMostOnceHeaderBytes = 8 + 8 + 4;
constexpr double kFramingBudgetPct = 5.0;

struct SweepPoint {
  double drop = 0.0;
  double wall_ms = 0.0;
  LoadGenReport report;
};

Result<SweepPoint> RunPoint(double drop, double seconds) {
  StorageEnv env;
  DatabaseOptions dbo;
  dbo.buffers = kBerkeleyBuffers;
  dbo.span_ring_capacity = 1 << 17;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env, dbo));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());

  LoadGenOptions opts;
  opts.seed = 42;
  opts.seconds = seconds;
  opts.transport = LoadTransport::kRpc;
  opts.net_faults.drop_request = drop / 2;
  opts.net_faults.drop_response = drop / 2;

  const auto t0 = Clock::now();
  LoadGen gen(&fs, opts);
  INV_RETURN_IF_ERROR(gen.Run());
  SweepPoint p;
  p.drop = drop;
  p.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  p.report = gen.Report();
  return p;
}

int Run(const char* out_path) {
  const std::vector<double> drops = {0.0, 0.001, 0.01};
  const double seconds = 5.0;
  std::vector<SweepPoint> points;
  for (double drop : drops) {
    auto p = RunPoint(drop, seconds);
    if (!p.ok()) {
      std::fprintf(stderr, "drop %.3f: %s\n", drop,
                   p.status().ToString().c_str());
      return 1;
    }
    const LoadGenReport& r = p->report;
    std::fprintf(stderr,
                 "drop %.1f%% ops=%llu errors=%llu goodput=%.2f/s "
                 "exchanges=%llu retries=%llu drc_hits=%llu wall=%.0fms\n",
                 drop * 100, static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.errors),
                 r.sim_seconds > 0 ? static_cast<double>(r.ops) / r.sim_seconds
                                   : 0.0,
                 static_cast<unsigned long long>(r.rpc_exchanges),
                 static_cast<unsigned long long>(r.rpc_retries),
                 static_cast<unsigned long long>(r.rpc_drc_hits), p->wall_ms);
    if (r.errors != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu op errors leaked through retry + DRC at "
                   "drop %.3f\n",
                   static_cast<unsigned long long>(r.errors), drop);
      return 1;
    }
    points.push_back(std::move(*p));
  }

  // Price the 20-byte at-most-once header against the unfaulted run: every
  // request frame pays kAtMostOnceHeaderBytes at the NetModel per-KB rate.
  const LoadGenReport& base = points[0].report;
  const NetParams net{};
  const double header_us =
      static_cast<double>(base.rpc_exchanges) *
      (static_cast<double>(kAtMostOnceHeaderBytes * net.per_kilobyte_us) /
       1024.0);
  const double total_us = base.sim_seconds * 1e6;
  const double framing_pct = total_us > 0 ? header_us / total_us * 100 : 0.0;
  std::fprintf(stderr,
               "framing: %llu frames x %llu header bytes = %.0fus of %.0fus "
               "sim (%.3f%%, budget %.1f%%)\n",
               static_cast<unsigned long long>(base.rpc_exchanges),
               static_cast<unsigned long long>(kAtMostOnceHeaderBytes),
               header_us, total_us, framing_pct, kFramingBudgetPct);
  if (framing_pct > kFramingBudgetPct) {
    std::fprintf(stderr, "FAIL: at-most-once framing overhead over budget\n");
    return 1;
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "open %s failed\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n\"bench\": \"pr10_network_fault_domain\",\n"
               "\"scenario\": \"builtin four-tenant mix (22 clients, seed 42) "
               "over the rpc transport; frame loss split request/response; "
               "retry + duplicate-request cache must absorb every fault\",\n"
               "\"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const LoadGenReport& r = p.report;
    const double goodput =
        r.sim_seconds > 0 ? static_cast<double>(r.ops) / r.sim_seconds : 0.0;
    const double retries_per_op =
        r.ops > 0 ? static_cast<double>(r.rpc_retries) / r.ops : 0.0;
    const double drc_hit_rate =
        r.rpc_retries > 0
            ? static_cast<double>(r.rpc_drc_hits) / r.rpc_retries
            : 0.0;
    std::fprintf(f,
                 "{\"drop_rate\": %.4f, \"wall_ms\": %.3f, "
                 "\"goodput_ops_per_sec\": %.3f, \"retries_per_op\": %.4f, "
                 "\"drc_hit_rate\": %.4f, \"report\":\n",
                 p.drop, p.wall_ms, goodput, retries_per_op, drc_hit_rate);
    std::fputs(r.DumpJson().c_str(), f);
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "],\n\"framing\": {\"header_bytes_per_request\": %llu, "
               "\"overhead_pct\": %.4f, \"budget_pct\": %.1f}\n}\n",
               static_cast<unsigned long long>(kAtMostOnceHeaderBytes),
               framing_pct, kFramingBudgetPct);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) {
  return invfs::Run(argc > 1 ? argv[1] : "BENCH_PR10.json");
}
