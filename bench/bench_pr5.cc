// Emits BENCH_PR5.json: the crash-recovery and fault-layer cost numbers the
// PR 5 robustness work claims.
//
//   * recovery_vs_image_size — wall time of Database::Open (which *is*
//     recovery: "reading the commit log") against images of growing size.
//     The paper says recovery is "essentially instantaneous"; the numbers
//     show it scales with the commit log, not the data.
//   * recovery_vs_inflight — the same with transactions left open at the
//     crash: recovery converts their in-progress entries to aborted and
//     persists the converted log pages.
//   * overhead — what the always-on robustness machinery costs when nothing
//     is armed: a CrashPointRegistry::Hit, and a device write through the
//     ErrorPolicyDevice / FaultDevice decorators versus the bare device.
//
// Usage: bench_pr5 [output.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/device/error_policy.h"
#include "src/fault/crash_points.h"
#include "src/fault/fault_device.h"
#include "src/inversion/inv_fs.h"

namespace invfs {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

uint64_t StorePages(const BlockStore& store) {
  uint64_t pages = 0;
  for (Oid rel : store.ListRelations()) {
    if (auto n = store.NumBlocks(rel); n.ok()) {
      pages += *n;
    }
  }
  return pages;
}

uint64_t ImagePages(const StorageEnv& env) {
  return StorePages(*env.disk_store) + StorePages(*env.nvram_store) +
         StorePages(*env.jukebox_store);
}

// Build an image: `files + inflight` files of `bytes_each` bytes committed
// one transaction each, then `inflight` extra sessions each left
// mid-transaction rewriting its own file (distinct files, so the open
// transactions hold disjoint locks and never wait on each other), then power
// cut.
Status BuildCrashedImage(StorageEnv* env, int files, int bytes_each,
                         int inflight, FaultInjector* injector = nullptr) {
  DatabaseOptions opts;
  opts.fault_injector = injector;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(env, opts));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());
  INV_ASSIGN_OR_RETURN(auto session, fs.NewSession());
  const std::string data(static_cast<size_t>(bytes_each), 'x');
  for (int i = 0; i < files + inflight; ++i) {
    INV_RETURN_IF_ERROR(session->p_begin());
    INV_ASSIGN_OR_RETURN(int fd,
                         session->p_creat("/f" + std::to_string(i)));
    INV_RETURN_IF_ERROR(
        session
            ->p_write(fd, std::as_bytes(std::span(data.data(), data.size())))
            .status());
    INV_RETURN_IF_ERROR(session->p_close(fd));
    INV_RETURN_IF_ERROR(session->p_commit());
  }
  std::vector<std::unique_ptr<InvSession>> open_txns;
  for (int i = 0; i < inflight; ++i) {
    INV_ASSIGN_OR_RETURN(auto s, fs.NewSession());
    INV_RETURN_IF_ERROR(s->p_begin());
    INV_ASSIGN_OR_RETURN(
        int fd, s->p_open("/f" + std::to_string(files + i), OpenMode::kWrite));
    INV_RETURN_IF_ERROR(
        s->p_write(fd, std::as_bytes(std::span(data.data(), data.size())))
            .status());
    open_txns.push_back(std::move(s));
  }
  db->Crash();
  return Status::Ok();
}

struct RecoveryPoint {
  int files = 0;
  int inflight = 0;
  uint64_t image_pages = 0;
  uint64_t log_pages = 0;
  double open_ms = 0;
};

Result<RecoveryPoint> MeasureRecovery(int files, int bytes_each, int inflight) {
  StorageEnv env;
  INV_RETURN_IF_ERROR(BuildCrashedImage(&env, files, bytes_each, inflight));
  RecoveryPoint p;
  p.files = files;
  p.inflight = inflight;
  p.image_pages = ImagePages(env);
  const auto t0 = Clock::now();
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
  p.open_ms = MsSince(t0);
  INV_ASSIGN_OR_RETURN(DeviceManager * log_dev,
                       db->devices().ManagerFor(kCommitLogRelOid));
  INV_ASSIGN_OR_RETURN(uint32_t log_pages, log_dev->NumBlocks(kCommitLogRelOid));
  p.log_pages = log_pages;
  return p;
}

// ns per unarmed CrashPointRegistry::Hit.
double CrashPointHitNs() {
  constexpr int kIters = 20'000'000;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    CrashPointRegistry::Hit("bench.point");
  }
  return MsSince(t0) * 1e6 / kIters;
}

// ns per 8 KB WriteBlock+ReadBlock pair through each device stack. One pass
// over one device is measured at a time, but passes are *interleaved* across
// the competing stacks (bare, then policy, then policy+fault, repeated, with
// the starting stack rotated): CPU frequency and scheduler drift then hit
// every stack alike instead of whichever one happened to run in the noisy
// window, which is what the overhead ratios need. Per stack the MEDIAN
// across passes is reported: on a shared machine the noise is nonstationary
// in both directions, and with interleaving every stack samples the same
// noise distribution, so the ratio of medians is the stable estimator (a
// min would be hostage to which stack happened to catch the quietest
// window).
std::vector<double> DeviceRoundTripNs(const std::vector<DeviceManager*>& devs) {
  constexpr Oid kRel = 7000;
  constexpr int kIters = 20'000;
  constexpr int kPasses = 31;
  std::vector<std::byte> page(kPageSize, std::byte{0x5a});
  std::vector<std::byte> out(kPageSize);
  for (DeviceManager* dev : devs) {
    // The stacks may share one backing store (so cache layout is identical
    // and only decorator cost differs); the relation then already exists for
    // every stack after the first.
    if (Status s = dev->CreateRelation(kRel);
        !s.ok() && s.code() != ErrorCode::kAlreadyExists) {
      return {};
    }
    (void)dev->WriteBlock(kRel, 0, page);
  }
  std::vector<std::vector<double>> samples(devs.size());
  for (int pass = 0; pass < kPasses; ++pass) {
    for (size_t k = 0; k < devs.size(); ++k) {
      const size_t d = (k + static_cast<size_t>(pass)) % devs.size();
      const auto t0 = Clock::now();
      for (int i = 0; i < kIters; ++i) {
        (void)devs[d]->WriteBlock(kRel, 0, page);
        (void)devs[d]->ReadBlock(kRel, 0, out);
      }
      samples[d].push_back(MsSince(t0) * 1e6 / kIters);
    }
  }
  std::vector<double> median(devs.size());
  for (size_t d = 0; d < devs.size(); ++d) {
    std::vector<double>& s = samples[d];
    std::nth_element(s.begin(), s.begin() + static_cast<ptrdiff_t>(s.size() / 2),
                     s.end());
    median[d] = s[s.size() / 2];
  }
  return median;
}

int Main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_PR5.json";
  std::string out = "{\n";
  out += "  \"note\": \"recovery == Database::Open on a crashed image. There"
         " is no log replay: the recovery component is reading the commit"
         " log (log_pages) plus converting in-progress entries; open_ms also"
         " includes catalog cache warm-up, which grows with the number of"
         " files but never touches data pages\",\n";

  std::fprintf(stderr, "recovery vs image size...\n");
  out += "  \"recovery_vs_image_size\": [\n";
  const int kSizes[] = {4, 16, 64, 256};
  for (size_t i = 0; i < std::size(kSizes); ++i) {
    auto p = MeasureRecovery(kSizes[i], 32 * 1024, /*inflight=*/0);
    if (!p.ok()) {
      std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
      return 1;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"files\": %d, \"image_pages\": %llu, \"log_pages\":"
                  " %llu, \"open_ms\": %.3f}%s\n",
                  p->files, static_cast<unsigned long long>(p->image_pages),
                  static_cast<unsigned long long>(p->log_pages), p->open_ms,
                  i + 1 < std::size(kSizes) ? "," : "");
    out += buf;
  }

  std::fprintf(stderr, "recovery vs in-flight transactions...\n");
  out += "  ],\n  \"recovery_vs_inflight\": [\n";
  const int kInflight[] = {0, 8, 32};
  for (size_t i = 0; i < std::size(kInflight); ++i) {
    auto p = MeasureRecovery(/*files=*/32, 32 * 1024, kInflight[i]);
    if (!p.ok()) {
      std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
      return 1;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"inflight_txns\": %d, \"image_pages\": %llu,"
                  " \"open_ms\": %.3f}%s\n",
                  p->inflight, static_cast<unsigned long long>(p->image_pages),
                  p->open_ms, i + 1 < std::size(kInflight) ? "," : "");
    out += buf;
  }

  std::fprintf(stderr, "unarmed overhead...\n");
  // Bare NVRAM device vs the same device under the retry policy, and under
  // policy + fault decorator with an injector that has nothing armed — the
  // production stacking when DatabaseOptions::fault_injector is set.
  // All three stacks wrap the SAME backing store and operate on the same
  // relation/block: the 8 KB page copies dominate the absolute cost, so
  // giving each stack its own store would make the comparison hostage to
  // allocator layout luck rather than decorator cost.
  MemBlockStore store;
  NvramDevice bare(&store);

  SimClock clock;
  MetricsRegistry metrics;
  ErrorPolicyDevice policy(std::make_unique<NvramDevice>(&store), &clock,
                           DeviceErrorPolicy{}, &metrics);

  FaultInjector injector;
  ErrorPolicyDevice policy_fault(
      std::make_unique<FaultDevice>(std::make_unique<NvramDevice>(&store),
                                    &injector),
      &clock, DeviceErrorPolicy{}, &metrics);

  const std::vector<double> rt = DeviceRoundTripNs({&bare, &policy, &policy_fault});
  if (rt.size() != 3) {
    std::fprintf(stderr, "overhead bench setup failed\n");
    return 1;
  }
  const double bare_ns = rt[0];
  const double policy_ns = rt[1];
  const double policy_fault_ns = rt[2];

  const double hit_ns = CrashPointHitNs();
  char obuf[768];
  std::snprintf(
      obuf, sizeof(obuf),
      "  ],\n  \"overhead\": {\n"
      "    \"crash_point_hit_ns\": %.3f,\n"
      "    \"device_rw_ns_bare\": %.1f,\n"
      "    \"device_rw_ns_retry_policy\": %.1f,\n"
      "    \"device_rw_ns_policy_plus_unarmed_fault\": %.1f,\n"
      "    \"retry_policy_overhead_pct\": %.2f,\n"
      "    \"full_fault_stack_overhead_pct\": %.2f\n"
      "  }\n}\n",
      hit_ns, bare_ns, policy_ns, policy_fault_ns,
      bare_ns > 0 ? (policy_ns / bare_ns - 1) * 100 : 0.0,
      bare_ns > 0 ? (policy_fault_ns / bare_ns - 1) * 100 : 0.0);
  out += obuf;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Main(argc, argv); }
