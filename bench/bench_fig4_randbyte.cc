// Figure 4: latency to read or write a single byte at a random location in
// the 25 MB file, all caches flushed first.
//
// Paper: "For single-byte reads, Inversion gets 70 percent of the throughput
// of NFS. Single-byte writes are slightly worse; Inversion is 61 percent of
// NFS. Since Inversion never overwrites data in place, a new entry must be
// written to the Btree block index, accounting for the difference."

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Figure 4: random single-byte access latency ==\n\n");
  auto results = RunAllConfigs();
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  std::printf("%-18s %14s %14s %14s\n", "", "Inversion c/s", "ULTRIX NFS",
              "Inversion sp");
  std::printf("%-18s %13.0fms %13.0fms %13.0fms\n", "read 1 byte",
              results->inv_cs.read_single_byte_s * 1e3,
              results->nfs.read_single_byte_s * 1e3,
              results->inv_sp.read_single_byte_s * 1e3);
  std::printf("%-18s %13.0fms %13.0fms %13.0fms\n", "write 1 byte",
              results->inv_cs.write_single_byte_s * 1e3,
              results->nfs.write_single_byte_s * 1e3,
              results->inv_sp.write_single_byte_s * 1e3);
  std::printf("\npaper ratios: read 70%%, write 61%% of NFS\n");
  std::printf("measured: read %.0f%%, write %.0f%% of NFS\n",
              100.0 * results->nfs.read_single_byte_s /
                  results->inv_cs.read_single_byte_s,
              100.0 * results->nfs.write_single_byte_s /
                  results->inv_cs.write_single_byte_s);
  std::printf("(writes are slower than reads in Inversion because the "
              "no-overwrite manager adds a new index entry per write — check:"
              " write/read latency ratio = %.2f, paper implies > 1)\n",
              results->inv_cs.write_single_byte_s /
                  results->inv_cs.read_single_byte_s);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
