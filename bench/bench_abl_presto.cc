// Ablation: PRESTOserve on/off for the NFS baseline.
//
// "Since NFS must flush every write to stable storage, Inversion should have
// much better performance than NFS without non-volatile RAM. ... NFS is
// forced to treat every write as a single transaction, and commit it to disk
// immediately. Inversion, however, can obey the transaction constraints
// imposed by the client program, and commit a large number of writes
// simultaneously." The paper could not disable the board ("political
// considerations"); we can.

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Ablation: NFS with and without PRESTOserve ==\n\n");
  WorldOptions with;
  WorldOptions without;
  without.nfs.presto.enabled = false;

  PaperBenchParams params;
  params.use_transactions = false;

  auto with_world = NfsWorld::Create(with);
  auto without_world = NfsWorld::Create(without);
  auto inv_world = InversionWorld::Create(with);
  if (!with_world.ok() || !without_world.ok() || !inv_world.ok()) {
    std::fprintf(stderr, "world construction failed\n");
    return 1;
  }
  auto nfs_with = RunPaperBenchmark((*with_world)->api(), (*with_world)->clock(),
                                    params);
  auto nfs_without = RunPaperBenchmark((*without_world)->api(),
                                       (*without_world)->clock(), params);
  PaperBenchParams inv_params;
  auto inv = RunPaperBenchmark((*inv_world)->remote_api(), (*inv_world)->clock(),
                               inv_params);
  if (!nfs_with.ok() || !nfs_without.ok() || !inv.ok()) {
    std::fprintf(stderr, "benchmark failed\n");
    return 1;
  }
  std::printf("%-30s %12s %14s %14s\n", "write test", "NFS+presto", "NFS(no NVRAM)",
              "Inversion c/s");
  std::printf("%-30s %11.2fs %13.2fs %13.2fs\n", "single 1MB write",
              nfs_with->write_1mb_single_s, nfs_without->write_1mb_single_s,
              inv->write_1mb_single_s);
  std::printf("%-30s %11.2fs %13.2fs %13.2fs\n", "sequential page writes",
              nfs_with->write_1mb_seq_pages_s, nfs_without->write_1mb_seq_pages_s,
              inv->write_1mb_seq_pages_s);
  std::printf("%-30s %11.2fs %13.2fs %13.2fs\n", "random page writes",
              nfs_with->write_1mb_rand_pages_s, nfs_without->write_1mb_rand_pages_s,
              inv->write_1mb_rand_pages_s);
  std::printf("%-30s %11.2fs %13.2fs %13.2fs\n", "create 25MB file",
              nfs_with->create_file_s, nfs_without->create_file_s,
              inv->create_file_s);
  std::printf("\nexpected shape: without NVRAM, NFS random page writes degrade"
              " (%.1fx) and Inversion's group commit closes most of the gap\n",
              nfs_without->write_1mb_rand_pages_s / nfs_with->write_1mb_rand_pages_s);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
