// Shared helpers for the paper-reproduction benchmark binaries.

#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "src/harness/paper_benchmark.h"
#include "src/harness/worlds.h"

namespace invfs {

struct AllResults {
  PaperBenchResult inv_cs;   // Inversion client/server
  PaperBenchResult nfs;      // ULTRIX NFS + PRESTOserve
  PaperBenchResult inv_sp;   // Inversion single process
};

// Run the paper's nine-test suite in all three configurations.
inline Result<AllResults> RunAllConfigs(WorldOptions options = {},
                                        PaperBenchParams params = {}) {
  AllResults out;
  {
    INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
    INV_ASSIGN_OR_RETURN(out.inv_cs,
                         RunPaperBenchmark(world->remote_api(), world->clock(), params));
  }
  {
    INV_ASSIGN_OR_RETURN(auto world, NfsWorld::Create(options));
    PaperBenchParams nfs_params = params;
    nfs_params.use_transactions = false;
    INV_ASSIGN_OR_RETURN(out.nfs,
                         RunPaperBenchmark(world->api(), world->clock(), nfs_params));
  }
  {
    INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
    INV_ASSIGN_OR_RETURN(out.inv_sp,
                         RunPaperBenchmark(world->local_api(), world->clock(), params));
  }
  return out;
}

// Horizontal bar for quick visual shape comparison (1 char per `unit` secs).
inline void PrintBar(const char* label, double seconds, double unit) {
  const int n = static_cast<int>(seconds / unit + 0.5);
  std::printf("  %-28s %7.2fs |", label, seconds);
  for (int i = 0; i < n && i < 70; ++i) {
    std::printf("#");
  }
  std::printf("\n");
}

}  // namespace invfs
