// google-benchmark microbenchmarks of the engine itself: real CPU throughput
// of the hot paths (everything else in bench/ reports simulated 1993 time).

#include <benchmark/benchmark.h>

#include "src/access/btree.h"
#include "src/buffer/buffer_pool.h"
#include "src/harness/worlds.h"
#include "src/obs/span.h"
#include "src/util/lzss.h"
#include "src/util/random.h"

namespace invfs {
namespace {

void BM_TupleEncodeDecode(benchmark::State& state) {
  Schema schema{{"chunkno", TypeId::kInt4},
                {"data", TypeId::kBytea},
                {"selfid", TypeId::kInt8},
                {"rawlen", TypeId::kInt4}};
  Row row{Value::Int4(7), Value::Bytes(Blob(kInvChunkSize, std::byte{0x3C})),
          Value::Int8(123456789), Value::Null()};
  for (auto s : state) {
    auto encoded = EncodeTuple(schema, row, TupleMeta{0, 2, 0});
    benchmark::DoNotOptimize(encoded);
    auto decoded = DecodeTuple(schema, *encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInvChunkSize);
}
BENCHMARK(BM_TupleEncodeDecode);

void BM_BtreeInsertLookup(benchmark::State& state) {
  StorageEnv env;
  auto db = Database::Open(&env);
  auto txn = (*db)->Begin();
  auto table = (*db)->catalog().CreateTable(
      *txn, "t", Schema{{"k", TypeId::kInt4}}, kDeviceMagneticDisk);
  auto index = (*db)->catalog().CreateIndex(*txn, *table, {0});
  int32_t key = 0;
  for (auto s : state) {
    (void)(*index)->btree->Insert(EncodeInt4Key(key), Tid{0, static_cast<uint16_t>(0)});
    auto hits = (*index)->btree->Lookup(EncodeInt4Key(key / 2));
    benchmark::DoNotOptimize(hits);
    ++key;
  }
}
BENCHMARK(BM_BtreeInsertLookup);

void BM_LzssRoundtrip(benchmark::State& state) {
  std::string text;
  while (text.size() < kInvChunkSize) {
    text += "the quick brown fox jumps over the lazy dog ";
  }
  std::span<const std::byte> input =
      std::as_bytes(std::span(text.data(), kInvChunkSize));
  for (auto s : state) {
    auto packed = LzssCompress(input);
    benchmark::DoNotOptimize(packed);
    auto raw = LzssDecompress(packed, kInvChunkSize);
    benchmark::DoNotOptimize(raw);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInvChunkSize);
}
BENCHMARK(BM_LzssRoundtrip);

void BM_FileWriteRead(benchmark::State& state) {
  WorldOptions options;
  auto world = InversionWorld::Create(options);
  FileApi& api = (*world)->local_api();
  (void)api.Begin();
  auto fd = api.Creat("/micro.dat");
  std::vector<std::byte> buf(kInvChunkSize, std::byte{0x21});
  for (auto s : state) {
    (void)api.Seek(*fd, 0, Whence::kSet);
    (void)api.Write(*fd, buf);
    (void)api.Seek(*fd, 0, Whence::kSet);
    (void)api.Read(*fd, buf);
  }
  (void)api.Close(*fd);
  (void)api.Commit();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          kInvChunkSize);
}
BENCHMARK(BM_FileWriteRead);

// Tight buffer-pool hit loop: the hottest instrumented path in the engine.
// scripts/check.sh's metrics leg diffs this against an INVFS_NO_METRICS build
// to bound the counter/trace overhead on the hit path (~5% budget).
void BM_BufferHit(benchmark::State& state) {
  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk, std::make_unique<MagneticDiskDevice>(
                                       &store, &clock, DiskParams{}));
  (void)sw.Get(kDeviceMagneticDisk)->CreateRelation(1);
  sw.BindRelation(1, kDeviceMagneticDisk);
  BufferPool pool(&sw, 8, &clock);
  uint32_t block = 0;
  {
    auto ref = pool.Extend(1, &block);
    if (!ref.ok()) {
      state.SkipWithError("extend failed");
      return;
    }
  }
  for (auto s : state) {
    auto ref = pool.Pin(1, 0);
    benchmark::DoNotOptimize(ref);
  }
  state.counters["hits"] = static_cast<double>(pool.hits());
}
BENCHMARK(BM_BufferHit);

// Raw cost of one span begin/end pair (two TLS reads/writes, a clock read,
// ten relaxed stores). Not gated — the gated numbers are BM_BufferHit and
// BM_FileWriteRead — but useful for sizing new instrumentation points.
void BM_ScopedSpan(benchmark::State& state) {
  SpanRing ring;
  for (auto s : state) {
    ScopedSpan span(&ring, "bench.span", 1, 2);
    benchmark::DoNotOptimize(span);
  }
  state.counters["recorded"] = static_cast<double>(ring.TotalRecorded());
}
BENCHMARK(BM_ScopedSpan);

void BM_PostquelParseExecute(benchmark::State& state) {
  WorldOptions options;
  auto world = InversionWorld::Create(options);
  auto session = (*world)->fs().NewSession();
  for (auto s : state) {
    auto rs = (*session)->Query(
        "retrieve (n.filename, n.file) from n in naming where n.parentid = 0");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_PostquelParseExecute);

}  // namespace
}  // namespace invfs

BENCHMARK_MAIN();
