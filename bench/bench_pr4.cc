// Emits BENCH_PR4.json: the BENCH_PR3 schema (paper figures, mt_scan,
// group_commit) extended with a "metrics" section sourced from the PR 4
// observability layer — buffer hit rate, log writes per transition, mean
// group-commit batch size, lock waits — plus the raw registry JSON snapshot
// of the scripted workload that produced them. Usage: bench_pr4 [output.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_mt_common.h"
#include "src/obs/metrics.h"

namespace invfs {
namespace {

void AppendPaperConfig(std::string& out, const char* name,
                       const PaperBenchResult& r, bool last) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\n"
                "      \"fig3_create_25mb_s\": %.4f,\n"
                "      \"fig4_read_byte_s\": %.6f,\n"
                "      \"fig4_write_byte_s\": %.6f,\n"
                "      \"fig5_read_1mb_single_s\": %.4f,\n"
                "      \"fig5_read_1mb_seq_pages_s\": %.4f,\n"
                "      \"fig5_read_1mb_rand_pages_s\": %.4f,\n"
                "      \"fig6_write_1mb_single_s\": %.4f,\n"
                "      \"fig6_write_1mb_seq_pages_s\": %.4f,\n"
                "      \"fig6_write_1mb_rand_pages_s\": %.4f\n"
                "    }%s\n",
                name, r.create_file_s, r.read_single_byte_s, r.write_single_byte_s,
                r.read_1mb_single_s, r.read_1mb_seq_pages_s, r.read_1mb_rand_pages_s,
                r.write_1mb_single_s, r.write_1mb_seq_pages_s, r.write_1mb_rand_pages_s,
                last ? "" : ",");
  out += buf;
}

// Mixed metadata + data workload against one world; every derived metric in
// the "metrics" section comes out of this run's registry.
Status RunObservedWorkload(InversionWorld* world) {
  InvSession& s = world->session();
  INV_RETURN_IF_ERROR(s.mkdir("/bench"));
  std::vector<std::byte> block(8192, std::byte{0x5a});
  for (int i = 0; i < 16; ++i) {
    const std::string path = "/bench/file" + std::to_string(i);
    INV_RETURN_IF_ERROR(s.p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s.p_creat(path));
    for (int j = 0; j < 8; ++j) {
      INV_RETURN_IF_ERROR(s.p_write(fd, block).status());
    }
    INV_RETURN_IF_ERROR(s.p_close(fd));
    INV_RETURN_IF_ERROR(s.p_commit());
  }
  for (int pass = 0; pass < 2; ++pass) {  // second pass is all buffer hits
    for (int i = 0; i < 16; ++i) {
      const std::string path = "/bench/file" + std::to_string(i);
      INV_ASSIGN_OR_RETURN(int fd, s.p_open(path, OpenMode::kRead));
      std::vector<std::byte> buf(8192);
      while (true) {
        INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, buf));
        if (n <= 0) {
          break;
        }
      }
      INV_RETURN_IF_ERROR(s.p_close(fd));
    }
  }
  INV_RETURN_IF_ERROR(
      s.Query("retrieve (f.filename) from f in naming").status());
  return Status::Ok();
}

// Find a sample by (name, label) in a registry snapshot; zero-valued counter
// when absent so derived ratios degrade to 0 instead of dividing garbage.
MetricSample FindSample(const std::vector<MetricSample>& snap,
                        const std::string& name, const std::string& label = "") {
  for (const MetricSample& s : snap) {
    if (s.name == name && s.label == label) {
      return s;
    }
  }
  return MetricSample{};
}

// Indent a pre-rendered JSON blob so it nests under the top-level object.
std::string Indent(const std::string& json, const char* pad) {
  std::string out;
  for (size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == '\n' && i + 1 < json.size()) {
      out += pad;
    }
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

int Main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_PR4.json";

  std::fprintf(stderr, "running paper suite (fig3-fig6)...\n");
  auto paper = RunAllConfigs();
  if (!paper.ok()) {
    std::fprintf(stderr, "%s\n", paper.status().ToString().c_str());
    return 1;
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "{\n  \"host_cores\": %u,\n"
                "  \"note\": \"wall-clock mt_scan speedups require a multi-core"
                " host; on one core threads time-slice and lock contention is"
                " invisible to wall time\",\n"
                "  \"paper_figures\": {\n",
                std::thread::hardware_concurrency());
  std::string out = header;
  AppendPaperConfig(out, "inversion_client_server", paper->inv_cs, false);
  AppendPaperConfig(out, "ultrix_nfs_presto", paper->nfs, false);
  AppendPaperConfig(out, "inversion_single_process", paper->inv_sp, true);
  out += "  },\n  \"mt_scan\": [\n";

  constexpr uint64_t kPinsPerThread = 200000;
  const int kThreads[] = {1, 4, 8, 16};
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    const int n = kThreads[i];
    std::fprintf(stderr, "mt_scan: %d threads...\n", n);
    const MtScanResult base = RunMtScan(n, /*partitions=*/1, kPinsPerThread);
    const MtScanResult shard = RunMtScan(n, /*partitions=*/0, kPinsPerThread);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"global_lock_mpins_per_s\": %.3f, "
                  "\"sharded_mpins_per_s\": %.3f, \"speedup\": %s}%s\n",
                  n, base.mpins_per_s, shard.mpins_per_s,
                  SpeedupJsonField(base.mpins_per_s, shard.mpins_per_s).c_str(),
                  i + 1 < std::size(kThreads) ? "," : "");
    out += buf;
  }

  out += "  ],\n  \"group_commit\": [\n";
  for (size_t i = 0; i < std::size(kThreads); ++i) {
    const int n = kThreads[i];
    std::fprintf(stderr, "group_commit: %d threads...\n", n);
    const MtCommitResult r = RunMtCommit(n, /*txns_per_thread=*/2000);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"txns\": %llu, \"transitions\": %llu, "
                  "\"persist_requests\": %llu, \"persist_batches\": %llu, "
                  "\"device_page_writes\": %llu, \"writes_per_transition\": %.3f, "
                  "\"ktxns_per_s\": %.1f}%s\n",
                  n, static_cast<unsigned long long>(r.txns),
                  static_cast<unsigned long long>(r.transitions),
                  static_cast<unsigned long long>(r.persist_requests),
                  static_cast<unsigned long long>(r.persist_batches),
                  static_cast<unsigned long long>(r.device_page_writes),
                  r.writes_per_transition, r.ktxns_per_s,
                  i + 1 < std::size(kThreads) ? "," : "");
    out += buf;
  }

  std::fprintf(stderr, "metrics: observed workload...\n");
  auto world_or = InversionWorld::Create();
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  InversionWorld& world = **world_or;
  if (Status s = RunObservedWorkload(&world); !s.ok()) {
    std::fprintf(stderr, "workload: %s\n", s.ToString().c_str());
    return 1;
  }
  MetricsRegistry& reg = world.db().metrics();
  const auto snap = reg.Snapshot();
  const uint64_t hits = FindSample(snap, "buffer.hits").value;
  const uint64_t misses = FindSample(snap, "buffer.misses").value;
  const MetricSample batches = FindSample(snap, "log.batch_transitions");
  const uint64_t log_writes = FindSample(snap, "log.device_page_writes").value;
  const double hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;
  const double mean_batch =
      batches.count > 0 ? static_cast<double>(batches.sum) / batches.count : 0.0;
  const double writes_per_transition =
      batches.sum > 0 ? static_cast<double>(log_writes) / batches.sum : 0.0;

  char mbuf[1024];
  std::snprintf(
      mbuf, sizeof(mbuf),
      "  ],\n  \"metrics\": {\n"
      "    \"buffer_hit_rate\": %.4f,\n"
      "    \"buffer_evictions\": %llu,\n"
      "    \"buffer_write_backs\": %llu,\n"
      "    \"log_writes_per_transition\": %.3f,\n"
      "    \"group_commit_mean_batch\": %.3f,\n"
      "    \"lock_waits\": %llu,\n"
      "    \"txn_commits\": %llu,\n"
      "    \"trace_events_recorded\": %llu,\n"
      "    \"registry\": ",
      hit_rate,
      static_cast<unsigned long long>(FindSample(snap, "buffer.evictions").value),
      static_cast<unsigned long long>(FindSample(snap, "buffer.write_backs").value),
      writes_per_transition, mean_batch,
      static_cast<unsigned long long>(FindSample(snap, "lock.waits").value),
      static_cast<unsigned long long>(FindSample(snap, "txn.commits").value),
      static_cast<unsigned long long>(reg.trace().TotalRecorded()));
  out += mbuf;
  out += Indent(reg.DumpJson(), "    ");
  out += "\n  }\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Main(argc, argv); }
