// Shared multi-threaded benchmark workloads for the sharded buffer pool and
// the group-commit log (PR 3). Unlike the paper-table benches these measure
// *wall-clock* throughput with std::chrono, because the quantity under test is
// lock contention between real OS threads — simulated time cannot see it.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/txn/commit_log.h"
#include "src/util/random.h"

namespace invfs {

struct MtScanResult {
  int threads = 0;
  size_t partitions = 0;
  uint64_t total_pins = 0;
  double seconds = 0;
  double mpins_per_s = 0;  // millions of page pins per wall second
};

// Cached-read scan: every thread random-pins pages of a relation that fits
// entirely in the pool, so each operation is a pure hit — the workload is
// nothing but the pool's hit-path synchronization. partitions=1 reproduces the
// seed's single-lock pool; the default sharded pool spreads hits over
// independent mutexes.
inline MtScanResult RunMtScan(int nthreads, size_t partitions,
                              uint64_t pins_per_thread) {
  constexpr Oid kRel = 1;
  constexpr uint32_t kBlocks = 64;

  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&store, &clock, DiskParams{}));
  (void)sw.Get(kDeviceMagneticDisk)->CreateRelation(kRel);
  sw.BindRelation(kRel, kDeviceMagneticDisk);

  BufferPool pool(&sw, /*num_buffers=*/128, &clock, CpuParams{}, partitions);
  for (uint32_t b = 0; b < kBlocks; ++b) {
    auto ref = pool.Extend(kRel, nullptr);
    if (!ref.ok()) {
      std::fprintf(stderr, "mt_scan setup: %s\n", ref.status().ToString().c_str());
      return {};
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x1234 + t);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < pins_per_thread; ++i) {
        auto ref = pool.Pin(kRel, static_cast<uint32_t>(rng.Uniform(kBlocks)));
        if (!ref.ok()) {
          std::fprintf(stderr, "mt_scan pin: %s\n", ref.status().ToString().c_str());
          return;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  MtScanResult r;
  r.threads = nthreads;
  r.partitions = partitions;
  r.total_pins = pins_per_thread * nthreads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mpins_per_s = r.seconds > 0 ? r.total_pins / r.seconds / 1e6 : 0;
  return r;
}

struct MtCommitResult {
  int threads = 0;
  uint64_t txns = 0;
  uint64_t transitions = 0;       // begin + commit status transitions issued
  uint64_t persist_requests = 0;  // transitions that waited for durability
  uint64_t persist_batches = 0;   // leader flushes actually performed
  uint64_t device_page_writes = 0;
  double writes_per_transition = 0;  // 1.0 = the unbatched POSTGRES 4.0.1 cost
  double seconds = 0;
  double ktxns_per_s = 0;
};

// Commit-heavy workload: every thread runs begin;commit transactions against
// one shared commit log. Without group commit each transition costs one device
// write (writes == requests); the leader/follower protocol coalesces
// transitions that arrive during another flush, so writes < requests under
// concurrency.
inline MtCommitResult RunMtCommit(int nthreads, uint64_t txns_per_thread) {
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log_or = CommitLog::Open(&dev);
  if (!log_or.ok()) {
    std::fprintf(stderr, "mt_commit open: %s\n", log_or.status().ToString().c_str());
    return {};
  }
  CommitLog& log = **log_or;

  std::atomic<TxnId> next_xid{kBootstrapTxn + 1};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        const TxnId xid = next_xid.fetch_add(1);
        if (!log.BeginTxn(xid).ok() || !log.CommitTxn(xid, xid).ok()) {
          std::fprintf(stderr, "mt_commit: txn %llu failed\n",
                       static_cast<unsigned long long>(xid));
          return;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  MtCommitResult r;
  r.threads = nthreads;
  r.txns = txns_per_thread * static_cast<uint64_t>(nthreads);
  r.transitions = 2 * r.txns;  // one begin + one commit each
  r.persist_requests = log.persist_requests();
  r.persist_batches = log.persist_batches();
  r.device_page_writes = log.device_page_writes();
  r.writes_per_transition =
      r.transitions > 0 ? static_cast<double>(r.device_page_writes) / r.transitions : 0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ktxns_per_s = r.seconds > 0 ? r.txns / r.seconds / 1e3 : 0;
  return r;
}

}  // namespace invfs
