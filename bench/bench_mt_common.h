// Shared multi-threaded benchmark workloads for the sharded buffer pool and
// the group-commit log (PR 3). Unlike the paper-table benches these measure
// *wall-clock* throughput with std::chrono, because the quantity under test is
// lock contention between real OS threads — simulated time cannot see it.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/catalog/database.h"
#include "src/txn/commit_log.h"
#include "src/util/random.h"

namespace invfs {

struct MtScanResult {
  int threads = 0;
  size_t partitions = 0;
  uint64_t total_pins = 0;
  double seconds = 0;
  double mpins_per_s = 0;  // millions of page pins per wall second
};

// Cached-read scan: every thread random-pins pages of a relation that fits
// entirely in the pool, so each operation is a pure hit — the workload is
// nothing but the pool's hit-path synchronization. partitions=1 reproduces the
// seed's single-lock pool; the default sharded pool spreads hits over
// independent mutexes.
inline MtScanResult RunMtScan(int nthreads, size_t partitions,
                              uint64_t pins_per_thread) {
  constexpr Oid kRel = 1;
  constexpr uint32_t kBlocks = 64;

  SimClock clock;
  MemBlockStore store;
  DeviceSwitch sw;
  sw.Register(kDeviceMagneticDisk,
              std::make_unique<MagneticDiskDevice>(&store, &clock, DiskParams{}));
  (void)sw.Get(kDeviceMagneticDisk)->CreateRelation(kRel);
  sw.BindRelation(kRel, kDeviceMagneticDisk);

  BufferPool pool(&sw, /*num_buffers=*/128, &clock, CpuParams{}, partitions);
  for (uint32_t b = 0; b < kBlocks; ++b) {
    auto ref = pool.Extend(kRel, nullptr);
    if (!ref.ok()) {
      std::fprintf(stderr, "mt_scan setup: %s\n", ref.status().ToString().c_str());
      return {};
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x1234 + t);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < pins_per_thread; ++i) {
        auto ref = pool.Pin(kRel, static_cast<uint32_t>(rng.Uniform(kBlocks)));
        if (!ref.ok()) {
          std::fprintf(stderr, "mt_scan pin: %s\n", ref.status().ToString().c_str());
          return;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  MtScanResult r;
  r.threads = nthreads;
  r.partitions = partitions;
  r.total_pins = pins_per_thread * nthreads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mpins_per_s = r.seconds > 0 ? r.total_pins / r.seconds / 1e6 : 0;
  return r;
}

// The speedup field for one mt_scan row, as a JSON value. On a host with
// fewer than two cores, threads time-slice on the one core: lock contention
// cannot reduce wall-clock throughput, the sharded/global ratio is ~1.0x
// measurement noise, and gating on it would be meaningless — so the field is
// the string "skipped" instead of a number (host_cores in the header says
// why). Text-mode benches print the same marker.
inline std::string SpeedupJsonField(double base_mpins, double sharded_mpins) {
  if (std::thread::hardware_concurrency() < 2) {
    return "\"skipped\"";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                base_mpins > 0 ? sharded_mpins / base_mpins : 0.0);
  return buf;
}

struct ReaderWriterResult {
  int readers = 0;
  bool with_writer = false;
  uint64_t read_txns = 0;        // read-only transactions completed
  uint64_t reads_under_lock = 0; // ...that finished while the writer held X
  uint64_t writer_commits = 0;
  double seconds = 0;
  double kreads_per_s = 0;       // thousand read txns per wall second
};

// Reader-vs-writer scaling (PR 8 tentpole evidence): N reader threads run
// read-only transactions (pinned snapshot, zero lock-manager traffic)
// scanning a table that one writer thread continuously updates under an
// exclusive 2PL lock. Under the old lock-then-read design every scan would
// queue behind the writer's exclusive lock; under snapshot-isolation reads
// the readers never notice it — reads_under_lock counts scans that completed
// *while* the writer demonstrably held the conflicting lock, which the old
// design could never do.
inline ReaderWriterResult RunReaderVsWriter(int nreaders,
                                            uint64_t reads_per_thread,
                                            bool with_writer) {
  StorageEnv env;
  auto db_or = Database::Open(&env);
  if (!db_or.ok()) {
    std::fprintf(stderr, "rw open: %s\n", db_or.status().ToString().c_str());
    return {};
  }
  Database& db = **db_or;

  TableInfo* table = nullptr;
  Tid victim{};
  {
    auto txn = db.Begin();
    auto t = db.catalog().CreateTable(
        *txn, "rw_bench", Schema{{"k", TypeId::kInt4}, {"v", TypeId::kInt4}},
        kDeviceMagneticDisk);
    if (!t.ok()) {
      std::fprintf(stderr, "rw setup: %s\n", t.status().ToString().c_str());
      return {};
    }
    table = *t;
    for (int i = 0; i < 64; ++i) {
      auto tid = db.InsertRow(*txn, table, {Value::Int4(i), Value::Int4(0)});
      if (!tid.ok()) {
        return {};
      }
      if (i == 0) {
        victim = *tid;
      }
    }
    if (!db.Commit(*txn).ok()) {
      return {};
    }
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop_writer{false};
  std::atomic<bool> lock_held{false};
  std::atomic<uint64_t> writer_commits{0};
  std::atomic<uint64_t> under_lock{0};

  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      int v = 0;
      while (!stop_writer.load(std::memory_order_acquire)) {
        auto txn = db.Begin();
        if (!txn.ok() ||
            !db.LockTable(*txn, table, LockMode::kExclusive).ok()) {
          return;
        }
        lock_held.store(true, std::memory_order_release);
        auto tid = db.ReplaceRow(*txn, table, victim,
                                 {Value::Int4(0), Value::Int4(++v)});
        if (!tid.ok()) {
          return;
        }
        victim = *tid;
        // Hold the lock for a realistic transaction body instead of
        // commit-storming: an unpaced loop would bloat the heap with dead
        // versions faster than readers can scan it, measuring MVCC garbage
        // accumulation (vacuum's job) rather than lock interference.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        // 2PL holds the exclusive lock until commit releases it.
        const bool committed = db.Commit(*txn).ok();
        lock_held.store(false, std::memory_order_release);
        if (!committed) {
          return;
        }
        writer_commits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(nreaders);
  for (int t = 0; t < nreaders; ++t) {
    readers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < reads_per_thread; ++i) {
        auto txn = db.Begin(TxnMode::kReadOnly);
        if (!txn.ok()) {
          return;
        }
        const bool saw_lock_before = lock_held.load(std::memory_order_acquire);
        int rows = 0;
        auto it = table->heap->Scan(db.ReadSnapshot(*txn));
        while (it.Next()) {
          ++rows;
        }
        if (rows != 64 || !db.Commit(*txn).ok()) {
          std::fprintf(stderr, "rw read: saw %d rows\n", rows);
          return;
        }
        // The lock was held across the whole scan only if it was held both
        // before and after; conservative undercount, never an overcount.
        if (saw_lock_before && lock_held.load(std::memory_order_acquire)) {
          under_lock.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  stop_writer.store(true, std::memory_order_release);
  if (writer.joinable()) {
    writer.join();
  }

  ReaderWriterResult r;
  r.readers = nreaders;
  r.with_writer = with_writer;
  r.read_txns = reads_per_thread * static_cast<uint64_t>(nreaders);
  r.reads_under_lock = under_lock.load();
  r.writer_commits = writer_commits.load();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.kreads_per_s = r.seconds > 0 ? r.read_txns / r.seconds / 1e3 : 0;
  return r;
}

struct MtCommitResult {
  int threads = 0;
  uint64_t txns = 0;
  uint64_t transitions = 0;       // begin + commit status transitions issued
  uint64_t persist_requests = 0;  // transitions that waited for durability
  uint64_t persist_batches = 0;   // leader flushes actually performed
  uint64_t device_page_writes = 0;
  double writes_per_transition = 0;  // 1.0 = the unbatched POSTGRES 4.0.1 cost
  double seconds = 0;
  double ktxns_per_s = 0;
};

// Commit-heavy workload: every thread runs begin;commit transactions against
// one shared commit log. Without group commit each transition costs one device
// write (writes == requests); the leader/follower protocol coalesces
// transitions that arrive during another flush, so writes < requests under
// concurrency.
inline MtCommitResult RunMtCommit(int nthreads, uint64_t txns_per_thread) {
  MemBlockStore store;
  NvramDevice dev(&store);
  auto log_or = CommitLog::Open(&dev);
  if (!log_or.ok()) {
    std::fprintf(stderr, "mt_commit open: %s\n", log_or.status().ToString().c_str());
    return {};
  }
  CommitLog& log = **log_or;

  std::atomic<TxnId> next_xid{kBootstrapTxn + 1};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        const TxnId xid = next_xid.fetch_add(1);
        if (!log.BeginTxn(xid).ok() || !log.CommitTxn(xid, xid).ok()) {
          std::fprintf(stderr, "mt_commit: txn %llu failed\n",
                       static_cast<unsigned long long>(xid));
          return;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  MtCommitResult r;
  r.threads = nthreads;
  r.txns = txns_per_thread * static_cast<uint64_t>(nthreads);
  r.transitions = 2 * r.txns;  // one begin + one commit each
  r.persist_requests = log.persist_requests();
  r.persist_batches = log.persist_batches();
  r.device_page_writes = log.device_page_writes();
  r.writes_per_transition =
      r.transitions > 0 ? static_cast<double>(r.device_page_writes) / r.transitions : 0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ktxns_per_s = r.seconds > 0 ? r.txns / r.seconds / 1e3 : 0;
  return r;
}

}  // namespace invfs
