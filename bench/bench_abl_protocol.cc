// Ablation: client/server protocol weight.
//
// "It is clear that the client/server communication protocol used by the file
// system is much too heavy-weight, and should be optimized. ... Given
// optimization of the protocol, it is reasonable to expect performance within
// fifty percent of ULTRIX NFS and PRESTOserve from Inversion."
//
// We sweep the per-message and per-byte protocol costs from measured-TCP down
// to an "optimized" protocol and check where the paper's prediction lands.

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Ablation: Inversion protocol weight ==\n\n");
  struct ProtoSpec {
    const char* name;
    NetParams params;
  };
  const ProtoSpec protos[] = {
      {"measured TCP (paper)", NetParams{2'500, 2'400}},
      {"trimmed TCP", NetParams{1'200, 1'900}},
      {"optimized (UDP-class)", NfsNetParams()},
  };

  WorldOptions nfs_options;
  auto nfs_world = NfsWorld::Create(nfs_options);
  if (!nfs_world.ok()) {
    std::fprintf(stderr, "%s\n", nfs_world.status().ToString().c_str());
    return 1;
  }
  PaperBenchParams nfs_params;
  nfs_params.use_transactions = false;
  auto nfs = RunPaperBenchmark((*nfs_world)->api(), (*nfs_world)->clock(), nfs_params);
  if (!nfs.ok()) {
    std::fprintf(stderr, "%s\n", nfs.status().ToString().c_str());
    return 1;
  }

  std::printf("%-24s %16s %20s %16s\n", "protocol", "single 1MB read",
              "seq page 1MB write", "%of-NFS (read)");
  for (const ProtoSpec& proto : protos) {
    WorldOptions options;
    options.inversion_net = proto.params;
    auto world = InversionWorld::Create(options);
    if (!world.ok()) {
      std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
      return 1;
    }
    auto r = RunPaperBenchmark((*world)->remote_api(), (*world)->clock(), {});
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %15.2fs %19.2fs %15.0f%%\n", proto.name, r->read_1mb_single_s,
                r->write_1mb_seq_pages_s,
                100.0 * nfs->read_1mb_single_s / r->read_1mb_single_s);
  }
  std::printf("\n(NFS+PRESTOserve reference: single 1MB read %.2fs)\n",
              nfs->read_1mb_single_s);
  std::printf("paper prediction: an optimized protocol brings Inversion within"
              " 50%% of NFS\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
