// Ablation: the chunk-number B-tree index.
//
// The paper attributes Inversion's slow file creation to B-tree maintenance
// ("For every page written to the file, Inversion must create a Btree index
// entry") and credits the same index for fast seeks. This ablation measures
// both sides: creation is faster without the index, but random page reads
// collapse into sequential scans of the chunk table.

#include "bench/bench_common.h"
#include "src/util/random.h"

namespace invfs {
namespace {

struct Numbers {
  double create_s = 0;
  double rand_read_s = 0;
};

Result<Numbers> RunOne(bool with_index) {
  WorldOptions options;
  options.inv.maintain_chunk_index = with_index;
  INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
  FileApi& api = world->local_api();
  SimClock& clock = world->clock();

  // 4 MB file keeps the no-index scan path tractable while preserving shape.
  const int64_t file_bytes = 4LL << 20;
  const int64_t page = api.PreferredPageSize();
  std::vector<std::byte> payload(static_cast<size_t>(page), std::byte{0x5A});

  Numbers out;
  {
    const SimMicros t0 = clock.Peek();
    INV_RETURN_IF_ERROR(api.Begin());
    INV_ASSIGN_OR_RETURN(int fd, api.Creat("/abl.dat"));
    for (int64_t written = 0; written < file_bytes; written += page) {
      INV_RETURN_IF_ERROR(api.Write(fd, payload).status());
    }
    INV_RETURN_IF_ERROR(api.Close(fd));
    INV_RETURN_IF_ERROR(api.Commit());
    out.create_s = clock.SecondsSince(t0);
  }
  {
    INV_RETURN_IF_ERROR(api.FlushCaches());
    Rng rng(42);
    INV_RETURN_IF_ERROR(api.Begin());
    INV_ASSIGN_OR_RETURN(int fd, api.Open("/abl.dat", false));
    const SimMicros t0 = clock.Peek();
    std::vector<std::byte> buf(static_cast<size_t>(page));
    for (int i = 0; i < 32; ++i) {
      const int64_t offset =
          static_cast<int64_t>(rng.Uniform(
              static_cast<uint64_t>(file_bytes / page))) * page;
      INV_RETURN_IF_ERROR(api.Seek(fd, offset, Whence::kSet).status());
      INV_RETURN_IF_ERROR(api.Read(fd, buf).status());
    }
    out.rand_read_s = clock.SecondsSince(t0);
    INV_RETURN_IF_ERROR(api.Close(fd));
    INV_RETURN_IF_ERROR(api.Commit());
  }
  return out;
}

int Main() {
  std::printf("== Ablation: chunk-number B-tree index ==\n\n");
  auto with = RunOne(true);
  auto without = RunOne(false);
  if (!with.ok() || !without.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!with.ok() ? with.status() : without.status()).ToString().c_str());
    return 1;
  }
  std::printf("%-28s %14s %14s\n", "", "with index", "without index");
  std::printf("%-28s %13.2fs %13.2fs\n", "create 4MB file", with->create_s,
              without->create_s);
  std::printf("%-28s %13.2fs %13.2fs\n", "32 random page reads", with->rand_read_s,
              without->rand_read_s);
  std::printf("\nexpected shape: no-index creation is %.1fx faster, but random reads"
              " are %.0fx slower\n",
              with->create_s / without->create_s,
              without->rand_read_s / with->rand_read_s);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
