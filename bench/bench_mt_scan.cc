// Multi-threaded buffer-pool scan benchmark (PR 3 tentpole).
//
// Drives 1–16 client threads doing cached random page pins against (a) a
// single-lock pool (partitions=1, the POSTGRES 4.0.1 / seed configuration)
// and (b) the sharded pool, then runs a commit-heavy workload to show group
// commit coalescing log-page device writes.

#include "bench/bench_mt_common.h"

namespace invfs {
namespace {

int Main() {
  constexpr uint64_t kPinsPerThread = 200000;
  constexpr int kThreadCounts[] = {1, 2, 4, 8, 16};

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== bench_mt_scan: cached pins, wall-clock throughput ==\n");
  std::printf("   host cores: %u%s\n\n", cores,
              cores <= 1 ? "  (single core: threads time-slice, so lock"
                           " contention cannot reduce wall-clock throughput;"
                           " run on a multi-core host to see the speedup)"
                         : "");
  std::printf("%8s %18s %18s %9s\n", "threads", "global-lock Mpin/s",
              "sharded Mpin/s", "speedup");
  for (int n : kThreadCounts) {
    const MtScanResult base = RunMtScan(n, /*partitions=*/1, kPinsPerThread);
    const MtScanResult shard = RunMtScan(n, /*partitions=*/0, kPinsPerThread);
    if (cores < 2) {
      std::printf("%8d %18.2f %18.2f %9s\n", n, base.mpins_per_s,
                  shard.mpins_per_s, "skipped");
    } else {
      std::printf("%8d %18.2f %18.2f %8.2fx\n", n, base.mpins_per_s,
                  shard.mpins_per_s,
                  base.mpins_per_s > 0 ? shard.mpins_per_s / base.mpins_per_s : 0);
    }
  }

  std::printf("\n== reader vs writer: snapshot reads under a churning 2PL writer ==\n\n");
  std::printf("%8s %8s %10s %12s %12s %10s\n", "readers", "writer", "read-txns",
              "under-lock", "w-commits", "kread/s");
  for (int n : {1, 2, 4}) {
    for (bool with_writer : {false, true}) {
      const ReaderWriterResult r =
          RunReaderVsWriter(n, /*reads_per_thread=*/2000, with_writer);
      std::printf("%8d %8s %10llu %12llu %12llu %10.1f\n", r.readers,
                  r.with_writer ? "yes" : "no",
                  static_cast<unsigned long long>(r.read_txns),
                  static_cast<unsigned long long>(r.reads_under_lock),
                  static_cast<unsigned long long>(r.writer_commits),
                  r.kreads_per_s);
    }
  }
  std::printf("\nunder-lock counts read transactions that completed while the writer\n"
              "held the conflicting exclusive lock: nonzero means writers do not\n"
              "block readers (any at all would deadlock under the old lock-then-read\n"
              "design on one core).\n");

  std::printf("\n== group commit: begin/commit storm, one shared log ==\n\n");
  std::printf("%8s %10s %12s %10s %12s %12s %10s\n", "threads", "txns",
              "transitions", "requests", "page-writes", "writes/trans", "ktxn/s");
  for (int n : kThreadCounts) {
    const MtCommitResult r = RunMtCommit(n, /*txns_per_thread=*/2000);
    std::printf("%8d %10llu %12llu %10llu %12llu %12.3f %10.1f\n", n,
                static_cast<unsigned long long>(r.txns),
                static_cast<unsigned long long>(r.transitions),
                static_cast<unsigned long long>(r.persist_requests),
                static_cast<unsigned long long>(r.device_page_writes),
                r.writes_per_transition, r.ktxns_per_s);
  }
  std::printf("\nPOSTGRES 4.0.1 wrote one log page per transition (writes/trans = 1.0).\n"
              "Begin batching under the xid horizon alone halves that; overlapping\n"
              "commits coalesce further via the leader/follower flush.\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
