// The [STON93] aside: the paper cites a companion experiment on a local
// machine (no network, no PRESTOserve) where "Inversion gets better than 90%
// of the throughput of the native file system on large sequential transfers,
// and roughly 70% of the throughput on small, uniformly random transfers."
//
// We reproduce it by comparing single-process Inversion against the FFS
// simulator accessed directly (no NFS server, no wire).

#include "bench/bench_common.h"
#include "src/util/random.h"

namespace invfs {
namespace {

// Local FFS through the FileApi shape (no network cost at all). Charges the
// same per-call and per-byte CPU costs as Inversion's entry points — both
// systems ran on the same machine.
class LocalFfsApi final : public FileApi {
 public:
  LocalFfsApi(FfsSim* ffs, SimClock* clock, CpuParams cpu)
      : ffs_(ffs), clock_(clock), cpu_(cpu) {}

  std::string_view name() const override { return "local-ffs"; }
  Status Begin() override { return Status::Ok(); }
  Status Commit() override { return Status::Ok(); }
  Result<int> Creat(const std::string& path) override {
    INV_RETURN_IF_ERROR(ffs_->Create(path));
    fds_[next_fd_] = {path, 0};
    return next_fd_++;
  }
  Result<int> Open(const std::string& path, bool) override {
    if (!ffs_->Exists(path)) {
      return Status::NotFound(path);
    }
    fds_[next_fd_] = {path, 0};
    return next_fd_++;
  }
  Status Close(int fd) override {
    // Local UFS semantics: dirty pages are synced on close for fairness with
    // Inversion's commit force.
    INV_RETURN_IF_ERROR(ffs_->Sync(fds_[fd].first));
    fds_.erase(fd);
    return Status::Ok();
  }
  Result<int64_t> Read(int fd, std::span<std::byte> buf) override {
    auto& [path, off] = fds_[fd];
    INV_ASSIGN_OR_RETURN(int64_t n, ffs_->ReadAt(path, off, buf));
    off += n;
    ChargeCpu(n);
    return n;
  }
  Result<int64_t> Write(int fd, std::span<const std::byte> buf) override {
    auto& [path, off] = fds_[fd];
    INV_ASSIGN_OR_RETURN(int64_t n, ffs_->WriteAt(path, off, buf, /*stable=*/false));
    off += n;
    ChargeCpu(n);
    return n;
  }
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence) override {
    auto& [path, off] = fds_[fd];
    int64_t base = 0;
    if (whence == Whence::kCur) {
      base = off;
    } else if (whence == Whence::kEnd) {
      INV_ASSIGN_OR_RETURN(base, ffs_->Size(path));
    }
    off = base + offset;
    return off;
  }
  int64_t PreferredPageSize() const override { return kPageSize; }
  Status FlushCaches() override { return ffs_->FlushCaches(); }

 private:
  void ChargeCpu(int64_t bytes) {
    clock_->Advance(cpu_.syscall_us +
                    (static_cast<uint64_t>(bytes) * cpu_.copy_per_kilobyte_us) / 1024);
  }

  FfsSim* ffs_;
  SimClock* clock_;
  CpuParams cpu_;
  std::map<int, std::pair<std::string, int64_t>> fds_;
  int next_fd_ = 3;
};

int Main() {
  std::printf("== [STON93] local comparison: Inversion vs native FS, no network ==\n\n");
  WorldOptions options;
  PaperBenchParams params;

  auto inv_world = InversionWorld::Create(options);
  if (!inv_world.ok()) {
    std::fprintf(stderr, "%s\n", inv_world.status().ToString().c_str());
    return 1;
  }
  auto inv = RunPaperBenchmark((*inv_world)->local_api(), (*inv_world)->clock(),
                               params);
  if (!inv.ok()) {
    std::fprintf(stderr, "%s\n", inv.status().ToString().c_str());
    return 1;
  }

  SimClock clock;
  FfsSim ffs(&clock, options.db.disk, options.ffs_cache_pages);
  LocalFfsApi ffs_api(&ffs, &clock, options.db.cpu);
  PaperBenchParams local_params = params;
  local_params.use_transactions = false;
  auto native = RunPaperBenchmark(ffs_api, clock, local_params);
  if (!native.ok()) {
    std::fprintf(stderr, "%s\n", native.status().ToString().c_str());
    return 1;
  }

  std::printf("%-34s %12s %12s %12s\n", "operation", "Inversion", "native FS",
              "Inv %of-native");
  struct RowSpec {
    const char* name;
    double PaperBenchResult::*m;
  };
  const RowSpec rows[] = {
      {"single 1MB read (large seq)", &PaperBenchResult::read_1mb_single_s},
      {"sequential page reads", &PaperBenchResult::read_1mb_seq_pages_s},
      {"random page reads (small rand)", &PaperBenchResult::read_1mb_rand_pages_s},
  };
  for (const RowSpec& row : rows) {
    std::printf("%-34s %11.2fs %11.2fs %11.0f%%\n", row.name, (*inv).*(row.m),
                (*native).*(row.m), 100.0 * ((*native).*(row.m)) / ((*inv).*(row.m)));
  }
  std::printf("\npaper: >90%% of native on large sequential transfers, ~70%% on "
              "small random transfers\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
