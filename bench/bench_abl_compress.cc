// Ablation: chunk-level compression ("Services Under Investigation").
//
// "Inversion supports compression and uncompression of 'chunks' of user
// files. ... Random access on the uncompressed version is straightforward.
// ... This approach provides good storage utilization and maintains
// reasonable random access times for files."
//
// Measured: storage pages used, sequential write/read time, and random-access
// latency, compressed vs uncompressed, for compressible text.

#include "bench/bench_common.h"
#include "src/util/random.h"

namespace invfs {
namespace {

struct Numbers {
  double write_s = 0;
  double seq_read_s = 0;
  double rand_read_s = 0;
  uint32_t table_pages = 0;
};

Result<Numbers> RunOne(bool compressed) {
  WorldOptions options;
  INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
  SimClock& clock = world->clock();
  auto session_or = world->fs().NewSession();
  INV_RETURN_IF_ERROR(session_or.status());
  InvSession& s = **session_or;

  // Compressible synthetic text, ~2 MB.
  std::string text;
  Rng rng(3);
  const char* words[] = {"sequoia", "global", "change", "climate", "satellite",
                         "image",   "data",   "the",    "of",      "storage"};
  while (text.size() < (2u << 20)) {
    text += words[rng.Uniform(10)];
    text += ' ';
  }

  Numbers out;
  CreatOptions creat;
  creat.compressed = compressed;
  {
    const SimMicros t0 = clock.Peek();
    INV_RETURN_IF_ERROR(s.p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s.p_creat("/text.dat", creat));
    INV_RETURN_IF_ERROR(
        s.p_write(fd, std::as_bytes(std::span(text.data(), text.size()))).status());
    INV_RETURN_IF_ERROR(s.p_close(fd));
    INV_RETURN_IF_ERROR(s.p_commit());
    out.write_s = clock.SecondsSince(t0);
  }
  {
    const Snapshot snap = world->db().SnapshotAt(world->db().Now());
    INV_ASSIGN_OR_RETURN(Oid oid, world->fs().ResolvePath("/text.dat", snap));
    INV_ASSIGN_OR_RETURN(
        TableInfo * table,
        world->db().catalog().GetTable("inv" + std::to_string(oid)));
    INV_ASSIGN_OR_RETURN(out.table_pages, table->heap->NumBlocks());
  }
  {
    INV_RETURN_IF_ERROR(world->db().FlushCaches());
    INV_RETURN_IF_ERROR(s.p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s.p_open("/text.dat", OpenMode::kRead));
    const SimMicros t0 = clock.Peek();
    std::vector<std::byte> buf(kInvChunkSize);
    for (;;) {
      INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, buf));
      if (n == 0) {
        break;
      }
    }
    out.seq_read_s = clock.SecondsSince(t0);
    // 64 random 100-byte probes.
    const SimMicros t1 = clock.Peek();
    std::vector<std::byte> probe(100);
    for (int i = 0; i < 64; ++i) {
      INV_RETURN_IF_ERROR(
          s.p_lseek(fd, static_cast<int64_t>(rng.Uniform(text.size() - 100)),
                    Whence::kSet)
              .status());
      INV_RETURN_IF_ERROR(s.p_read(fd, probe).status());
    }
    out.rand_read_s = clock.SecondsSince(t1);
    INV_RETURN_IF_ERROR(s.p_close(fd));
    INV_RETURN_IF_ERROR(s.p_commit());
  }
  return out;
}

int Main() {
  std::printf("== Ablation: chunk compression (2 MB compressible text) ==\n\n");
  auto raw = RunOne(false);
  auto packed = RunOne(true);
  if (!raw.ok() || !packed.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!raw.ok() ? raw.status() : packed.status()).ToString().c_str());
    return 1;
  }
  std::printf("%-26s %14s %14s\n", "", "uncompressed", "compressed");
  std::printf("%-26s %13up %13up\n", "chunk-table pages", raw->table_pages,
              packed->table_pages);
  std::printf("%-26s %13.2fs %13.2fs\n", "sequential write", raw->write_s,
              packed->write_s);
  std::printf("%-26s %13.2fs %13.2fs\n", "cold sequential read", raw->seq_read_s,
              packed->seq_read_s);
  std::printf("%-26s %13.2fs %13.2fs\n", "64 random 100B reads", raw->rand_read_s,
              packed->rand_read_s);
  std::printf("\nexpected shape: compression cuts storage ~%.1fx while random reads"
              " stay the same order (only the covering chunk is decompressed)\n",
              static_cast<double>(raw->table_pages) / packed->table_pages);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
