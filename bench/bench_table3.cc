// Table 3 of the paper: elapsed time in seconds for the nine benchmark tests
// in three configurations — Inversion client/server, ULTRIX NFS (with
// PRESTOserve), and Inversion single process.
//
// Times are simulated seconds from the calibrated 1993 cost model; the paper
// column is reproduced alongside for shape comparison. Run with no arguments.

#include <cstdio>

#include "src/harness/paper_benchmark.h"
#include "src/harness/worlds.h"

namespace invfs {
namespace {

struct PaperColumn {
  double create, r1mb, rseq, rrand, w1mb, wseq, wrand, rbyte, wbyte;
};

// The paper's Table 3 values.
constexpr PaperColumn kPaperInvCs = {141.5, 3.4, 4.8, 5.5, 4.6, 5.6, 6.0, 0.02, 0.03};
constexpr PaperColumn kPaperNfs = {50.6, 2.8, 2.2, 2.4, 2.0, 1.7, 1.7, 0.01, 0.02};
constexpr PaperColumn kPaperInvSp = {111.6, 0.4, 0.4, 0.8, 1.4, 1.4, 2.9, 0.01, 0.02};

void PrintTable(const PaperBenchResult& cs, const PaperBenchResult& nfs,
                const PaperBenchResult& sp) {
  struct RowSpec {
    const char* name;
    double PaperColumn::*pm;
    double PaperBenchResult::*mm;
  };
  const RowSpec rows[] = {
      {"Create 25MByte file", &PaperColumn::create, &PaperBenchResult::create_file_s},
      {"Single 1MByte read", &PaperColumn::r1mb, &PaperBenchResult::read_1mb_single_s},
      {"Page-sized sequential 1MByte read", &PaperColumn::rseq,
       &PaperBenchResult::read_1mb_seq_pages_s},
      {"Page-sized random 1MByte read", &PaperColumn::rrand,
       &PaperBenchResult::read_1mb_rand_pages_s},
      {"Single 1MByte write", &PaperColumn::w1mb, &PaperBenchResult::write_1mb_single_s},
      {"Page-sized sequential 1MByte write", &PaperColumn::wseq,
       &PaperBenchResult::write_1mb_seq_pages_s},
      {"Page-sized random 1MByte write", &PaperColumn::wrand,
       &PaperBenchResult::write_1mb_rand_pages_s},
      {"Read single byte", &PaperColumn::rbyte, &PaperBenchResult::read_single_byte_s},
      {"Write single byte", &PaperColumn::wbyte, &PaperBenchResult::write_single_byte_s},
  };
  std::printf("%-36s | %-21s | %-21s | %-21s\n", "", "Inversion client/server",
              "ULTRIX NFS", "Inversion single-proc");
  std::printf("%-36s | %10s %10s | %10s %10s | %10s %10s\n", "Operation", "paper",
              "measured", "paper", "measured", "paper", "measured");
  std::printf(
      "-------------------------------------+-----------------------+------------"
      "-----------+----------------------\n");
  for (const RowSpec& row : rows) {
    std::printf("%-36s | %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n", row.name,
                kPaperInvCs.*(row.pm), cs.*(row.mm), kPaperNfs.*(row.pm),
                nfs.*(row.mm), kPaperInvSp.*(row.pm), sp.*(row.mm));
  }
  std::printf("\nShape checks (paper -> measured):\n");
  auto ratio = [](double a, double b) { return b == 0 ? 0.0 : a / b; };
  std::printf("  NFS/Inv-cs create throughput ratio: paper %.2f, measured %.2f\n",
              kPaperInvCs.create / kPaperNfs.create, ratio(cs.create_file_s,
                                                           nfs.create_file_s));
  std::printf("  Inv-sp speedup vs NFS (seq page read): paper %.1fx, measured %.1fx\n",
              kPaperNfs.rseq / kPaperInvSp.rseq,
              ratio(nfs.read_1mb_seq_pages_s, sp.read_1mb_seq_pages_s));
  std::printf("  NFS random write degradation: paper %.2fx, measured %.2fx\n",
              kPaperNfs.wrand / kPaperNfs.wseq,
              ratio(nfs.write_1mb_rand_pages_s, nfs.write_1mb_seq_pages_s));
}

int Main() {
  WorldOptions options;

  auto inv_world = InversionWorld::Create(options);
  if (!inv_world.ok()) {
    std::fprintf(stderr, "inversion world: %s\n", inv_world.status().ToString().c_str());
    return 1;
  }
  auto nfs_world = NfsWorld::Create(options);
  if (!nfs_world.ok()) {
    std::fprintf(stderr, "nfs world: %s\n", nfs_world.status().ToString().c_str());
    return 1;
  }

  PaperBenchParams params;
  std::printf("== Table 3: elapsed seconds, three configurations ==\n\n");

  auto cs = RunPaperBenchmark((*inv_world)->remote_api(), (*inv_world)->clock(),
                              params);
  if (!cs.ok()) {
    std::fprintf(stderr, "client/server bench: %s\n", cs.status().ToString().c_str());
    return 1;
  }

  PaperBenchParams nfs_params = params;
  nfs_params.use_transactions = false;
  auto nfs = RunPaperBenchmark((*nfs_world)->api(), (*nfs_world)->clock(), nfs_params);
  if (!nfs.ok()) {
    std::fprintf(stderr, "nfs bench: %s\n", nfs.status().ToString().c_str());
    return 1;
  }

  // Fresh Inversion world so the single-process run starts cold like the rest.
  auto sp_world = InversionWorld::Create(options);
  if (!sp_world.ok()) {
    std::fprintf(stderr, "inversion world: %s\n", sp_world.status().ToString().c_str());
    return 1;
  }
  auto sp = RunPaperBenchmark((*sp_world)->local_api(), (*sp_world)->clock(), params);
  if (!sp.ok()) {
    std::fprintf(stderr, "single-process bench: %s\n", sp.status().ToString().c_str());
    return 1;
  }

  PrintTable(*cs, *nfs, *sp);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
