// Figure 5: 1 MB read throughput in three access patterns.
//
// Paper: single large transfer — Inversion 80% of NFS; page-sized sequential
// — 47%; page-sized random — 43% ("the additional overhead incurred by
// traversing the Btree page index in Inversion accounts for much of the
// slowdown").

#include "bench/bench_common.h"

namespace invfs {
namespace {

int Main() {
  std::printf("== Figure 5: read throughput (1 MByte) ==\n\n");
  auto results = RunAllConfigs();
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  struct RowSpec {
    const char* name;
    double PaperBenchResult::*m;
    double paper_pct;
  };
  const RowSpec rows[] = {
      {"single 1MB read", &PaperBenchResult::read_1mb_single_s, 80},
      {"sequential page-sized", &PaperBenchResult::read_1mb_seq_pages_s, 47},
      {"random page-sized", &PaperBenchResult::read_1mb_rand_pages_s, 43},
  };
  std::printf("%-24s %14s %14s %18s %10s\n", "pattern", "Inversion c/s",
              "ULTRIX NFS", "measured %of-NFS", "paper");
  for (const RowSpec& row : rows) {
    const double inv = results->inv_cs.*(row.m);
    const double nfs = results->nfs.*(row.m);
    std::printf("%-24s %13.2fs %13.2fs %17.0f%% %9.0f%%\n", row.name, inv, nfs,
                100.0 * nfs / inv, row.paper_pct);
  }
  std::printf("\nshape check: Inversion degrades from single -> seq pages -> random"
              " (B-tree traversal per page): %.2f <= %.2f <= %.2f\n",
              results->inv_cs.read_1mb_single_s, results->inv_cs.read_1mb_seq_pages_s,
              results->inv_cs.read_1mb_rand_pages_s);
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
