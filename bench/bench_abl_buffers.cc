// Ablation: buffer-pool size (POSTGRES shipped 64 buffers; Berkeley ran 300).
//
// The pool size decides whether a working set streams through the cache
// (interleaved evictions, seeks) or flushes once, sorted, at commit.

#include "bench/bench_common.h"
#include "src/util/random.h"

namespace invfs {
namespace {

Result<std::pair<double, double>> RunOne(size_t buffers) {
  WorldOptions options;
  options.db.buffers = buffers;
  INV_ASSIGN_OR_RETURN(auto world, InversionWorld::Create(options));
  FileApi& api = world->local_api();
  SimClock& clock = world->clock();

  const int64_t file_bytes = 8LL << 20;
  const int64_t page = api.PreferredPageSize();
  std::vector<std::byte> payload(static_cast<size_t>(page), std::byte{0x77});

  const SimMicros t0 = clock.Peek();
  INV_RETURN_IF_ERROR(api.Begin());
  INV_ASSIGN_OR_RETURN(int fd, api.Creat("/buf.dat"));
  for (int64_t written = 0; written < file_bytes; written += page) {
    INV_RETURN_IF_ERROR(api.Write(fd, payload).status());
  }
  INV_RETURN_IF_ERROR(api.Close(fd));
  INV_RETURN_IF_ERROR(api.Commit());
  const double create_s = clock.SecondsSince(t0);

  // Re-read a 1 MB region twice: the second pass measures cache retention.
  INV_RETURN_IF_ERROR(api.FlushCaches());
  INV_RETURN_IF_ERROR(api.Begin());
  INV_ASSIGN_OR_RETURN(int rfd, api.Open("/buf.dat", false));
  std::vector<std::byte> buf(static_cast<size_t>(page));
  const SimMicros t1 = clock.Peek();
  for (int pass = 0; pass < 2; ++pass) {
    INV_RETURN_IF_ERROR(api.Seek(rfd, 0, Whence::kSet).status());
    for (int64_t done = 0; done < (1 << 20); done += page) {
      INV_RETURN_IF_ERROR(api.Read(rfd, buf).status());
    }
  }
  const double reread_s = clock.SecondsSince(t1);
  INV_RETURN_IF_ERROR(api.Close(rfd));
  INV_RETURN_IF_ERROR(api.Commit());
  return std::make_pair(create_s, reread_s);
}

int Main() {
  std::printf("== Ablation: buffer pool size ==\n\n");
  std::printf("%10s %18s %24s\n", "buffers", "create 8MB file", "2x sequential 1MB read");
  for (size_t buffers : {16, 64, 300, 1024}) {
    auto r = RunOne(buffers);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%10zu %17.2fs %23.2fs\n", buffers, r->first, r->second);
  }
  std::printf("\nexpected shape: re-read time drops once 1 MB (129 chunk pages +"
              " index) fits in the pool\n");
  return 0;
}

}  // namespace
}  // namespace invfs

int main() { return invfs::Main(); }
